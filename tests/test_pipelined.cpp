// Chunk-pipelined execution: simulator mode, analytic model calibration,
// and the size-adaptive algorithm selector built on both.
#include "psd/core/pipelined_cost.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "psd/collective/algorithms.hpp"
#include "psd/core/algo_select.hpp"
#include "psd/core/optimizers.hpp"
#include "psd/sim/flow_sim.hpp"
#include "psd/topo/builders.hpp"

namespace psd::core {
namespace {

using collective::CollectiveSchedule;
using sim::FlowLevelSimulator;
using sim::SimConfig;
using topo::Matching;

CostParams paper_params(TimeNs alpha_r) {
  CostParams p;
  p.alpha = nanoseconds(100);
  p.delta = nanoseconds(100);
  p.alpha_r = alpha_r;
  p.b = gbps(800);
  return p;
}

FlowLevelSimulator make_sim(int n, TimeNs alpha_r, bool pipeline, int chunks) {
  SimConfig cfg;
  cfg.params = paper_params(alpha_r);
  cfg.pipeline = pipeline;
  cfg.pipeline_chunks = chunks;
  return FlowLevelSimulator(topo::directed_ring(n, gbps(800)),
                            Matching::rotation(n, 1), cfg);
}

ProblemInstance make_instance(const CollectiveSchedule& sched, int n,
                              TimeNs alpha_r) {
  const auto base = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle oracle(base, gbps(800));
  return ProblemInstance(sched, oracle, paper_params(alpha_r));
}

std::vector<TopoChoice> uniform_plan(const CollectiveSchedule& sched,
                                     TopoChoice c) {
  return std::vector<TopoChoice>(static_cast<std::size_t>(sched.num_steps()), c);
}

// ---- Degeneration: one chunk IS the barrier schedule ----------------------

// Golden pin of the ISSUE acceptance config: at pipeline_chunks == 1 the
// pipelined simulator, the barrier simulator, the analytic pipelined model,
// and Eq. (4)/(7) evaluate_plan all agree on the same number.
TEST(Pipelined, SingleChunkDegeneratesToBarrier) {
  const int n = 8;
  const auto sched = collective::ring_allreduce(n, mib(4));
  for (const TopoChoice c : {TopoChoice::kBase, TopoChoice::kMatched}) {
    const auto plan = uniform_plan(sched, c);
    auto barrier = make_sim(n, microseconds(10), /*pipeline=*/false, 1);
    auto pipelined = make_sim(n, microseconds(10), /*pipeline=*/true, 1);
    const double t_barrier = barrier.run(sched, plan).completion_time.ns();
    const double t_pipe = pipelined.run(sched, plan).completion_time.ns();
    EXPECT_NEAR(t_pipe, t_barrier, 1e-12 * t_barrier);

    const auto inst = make_instance(sched, n, microseconds(10));
    const auto analytic = evaluate_plan(inst, plan);
    const PipelinedCostModel model(inst);
    EXPECT_NEAR(model.completion(plan, 1).ns(), analytic.total_time().ns(),
                1e-9 * analytic.total_time().ns());
    EXPECT_NEAR(t_pipe, analytic.total_time().ns(),
                1e-6 * analytic.total_time().ns());
  }
}

// Per-step traces agree between the modes at C = 1 (same barrier schedule).
TEST(Pipelined, SingleChunkStepTracesMatchBarrier) {
  const int n = 8;
  const auto sched = collective::halving_doubling_allreduce(n, mib(1));
  const auto plan = uniform_plan(sched, TopoChoice::kMatched);
  auto barrier = make_sim(n, microseconds(10), false, 1);
  auto pipelined = make_sim(n, microseconds(10), true, 1);
  const auto rb = barrier.run(sched, plan);
  const auto rp = pipelined.run(sched, plan);
  ASSERT_EQ(rb.steps.size(), rp.steps.size());
  EXPECT_EQ(rb.reconfigurations, rp.reconfigurations);
  for (std::size_t i = 0; i < rb.steps.size(); ++i) {
    const double scale = std::max(1.0, rb.steps[i].end.ns());
    EXPECT_NEAR(rp.steps[i].start.ns(), rb.steps[i].start.ns(), 1e-12 * scale);
    EXPECT_NEAR(rp.steps[i].comm_start.ns(), rb.steps[i].comm_start.ns(),
                1e-12 * scale);
    EXPECT_NEAR(rp.steps[i].end.ns(), rb.steps[i].end.ns(), 1e-12 * scale);
    EXPECT_DOUBLE_EQ(rp.steps[i].theta, rb.steps[i].theta);
    EXPECT_EQ(rp.steps[i].max_hops, rb.steps[i].max_hops);
  }
}

// ---- Calibration: analytic model == simulator, all chunk counts -----------

// The PipelinedCostModel evaluates the same recurrence the simulator
// executes; they must agree to floating-point noise on every builder,
// node count, plan shape, and chunk count.
TEST(Pipelined, ModelMatchesSimulatorAcrossGrid) {
  const TimeNs alpha_r = microseconds(10);
  for (const int n : {4, 8, 16}) {
    const std::vector<std::pair<const char*, CollectiveSchedule>> schedules = {
        {"ring", collective::ring_allreduce(n, mib(8))},
        {"hd", collective::halving_doubling_allreduce(n, mib(8))},
        {"rd", collective::recursive_doubling_allreduce(n, kib(256))},
        {"transpose", collective::alltoall_transpose(n, mib(2))},
    };
    for (const auto& [name, sched] : schedules) {
      const auto inst = make_instance(sched, n, alpha_r);
      const auto optimal = optimal_plan(inst, {});
      const std::vector<std::vector<TopoChoice>> plans = {
          uniform_plan(sched, TopoChoice::kBase),
          uniform_plan(sched, TopoChoice::kMatched),
          optimal.choice,
      };
      const PipelinedCostModel model(inst);
      for (const auto& plan : plans) {
        for (const int chunks : {1, 2, 4, 8}) {
          auto sim = make_sim(n, alpha_r, true, chunks);
          const double t_sim = sim.run(sched, plan).completion_time.ns();
          const double t_model = model.completion(plan, chunks).ns();
          EXPECT_NEAR(t_model, t_sim, 1e-6 * std::max(1.0, t_sim))
              << name << " n=" << n << " chunks=" << chunks;
        }
      }
    }
  }
}

// ---- The pipelining tradeoff ----------------------------------------------

// best_over_chunks includes C = 1, so adopting pipelining can never predict
// a completion above the barrier schedule.
TEST(Pipelined, BestOverChunksNeverAboveBarrier) {
  for (const int n : {4, 8, 16}) {
    for (const auto& sched : {collective::ring_allreduce(n, mib(16)),
                              collective::halving_doubling_allreduce(n, kib(64))}) {
      const auto inst = make_instance(sched, n, microseconds(10));
      const auto optimal = optimal_plan(inst, {});
      const PipelinedCostModel model(inst);
      const auto sweep = model.best_over_chunks(optimal.choice, 64);
      EXPECT_LE(sweep.completion.ns(), sweep.barrier.ns());
      const auto barrier = evaluate_plan(inst, optimal.choice);
      EXPECT_NEAR(sweep.barrier.ns(), barrier.total_time().ns(),
                  1e-9 * barrier.total_time().ns());
    }
  }
}

// With α = 0 chunking costs nothing, so EVERY chunk count is at least as
// fast as the barrier schedule (monotone overlap), not just the best one.
TEST(Pipelined, ZeroAlphaPipeliningNeverHurts) {
  CostParams p = paper_params(microseconds(10));
  p.alpha = TimeNs(0.0);
  for (const int n : {4, 8}) {
    const auto sched = collective::ring_allreduce(n, mib(4));
    const auto base = topo::directed_ring(n, gbps(800));
    const flow::ThetaOracle oracle(base, gbps(800));
    const ProblemInstance inst(sched, oracle, p);
    const PipelinedCostModel model(inst);
    const auto plan = uniform_plan(sched, TopoChoice::kBase);
    const double barrier = model.completion(plan, 1).ns();
    for (const int chunks : {2, 4, 8, 16, 32}) {
      EXPECT_LE(model.completion(plan, chunks).ns(), barrier * (1.0 + 1e-12))
          << "n=" << n << " chunks=" << chunks;
    }
  }
}

// A reconfiguration-free plan on big payloads overlaps consecutive steps, so
// pipelining strictly beats the barrier schedule wherever the hidden
// propagation exceeds the extra α rounds. Neighbor-matched steps (ℓ = 1)
// have nothing to hide at δ = α — halving/doubling ridden entirely on the
// base ring reaches ℓ up to n/2, and there chunking wins outright.
TEST(Pipelined, LargeMessagesBenefitOnReconfigFreePlan) {
  const int n = 8;
  const auto sched = collective::halving_doubling_allreduce(n, mib(64));
  const auto inst = make_instance(sched, n, microseconds(10));
  const PipelinedCostModel model(inst);
  const auto plan = uniform_plan(sched, TopoChoice::kBase);  // z_i free
  const auto sweep = model.best_over_chunks(plan, 64);
  EXPECT_LT(sweep.completion.ns(), sweep.barrier.ns());
  EXPECT_GT(sweep.chunks, 1);
}

// ---- Size-adaptive selection ----------------------------------------------

// The ISSUE acceptance pin: on one topology (directed ring, n = 8) kAuto
// resolves to different allreduce algorithms at ≤ 4 KiB vs ≥ 64 MiB, and the
// large-message winner's pipelined DCT beats the barrier DCT of the default
// (halving/doubling) algorithm.
TEST(AlgoSelect, AllReduceFlipsAcrossSizes) {
  const int n = 8;
  Planner planner(topo::directed_ring(n, gbps(800)), paper_params(microseconds(10)));
  workload::MaterializeOptions opts;
  opts.allreduce = workload::AllReduceAlgo::kAuto;

  const workload::CollectiveRequest small{workload::CollectiveKind::kAllReduce,
                                          kib(4), "small"};
  const auto sel_small = select_algorithm(planner, small, opts);
  EXPECT_TRUE(sel_small.threshold_fallback);
  EXPECT_EQ(sel_small.chosen.algo, "rd");

  const workload::CollectiveRequest large{workload::CollectiveKind::kAllReduce,
                                          mib(64), "large"};
  const auto sel_large = select_algorithm(planner, large, opts);
  EXPECT_FALSE(sel_large.threshold_fallback);
  EXPECT_EQ(sel_large.chosen.algo, "ring");
  EXPECT_NE(sel_small.chosen.algo, sel_large.chosen.algo);

  // The pipelined winner beats the barrier cost of the non-adaptive default.
  opts.allreduce = workload::AllReduceAlgo::kHalvingDoubling;
  const auto sched = workload::materialize(large, n, opts);
  const auto default_plan = optimal_plan(planner.instance(sched), {});
  EXPECT_LT(sel_large.chosen.pipelined_dct.ns(),
            default_plan.total_time().ns());
  // And never exceeds its own barrier plan (C = 1 swept).
  EXPECT_LE(sel_large.chosen.pipelined_dct.ns(),
            sel_large.chosen.barrier_dct.ns());
}

TEST(AlgoSelect, AllToAllAutoResolves) {
  const int n = 8;
  Planner planner(topo::directed_ring(n, gbps(800)), paper_params(microseconds(10)));
  workload::MaterializeOptions opts;
  opts.alltoall = workload::AllToAllAlgo::kAuto;

  const workload::CollectiveRequest small{workload::CollectiveKind::kAllToAll,
                                          kib(2), "small"};
  const auto sel_small = select_algorithm(planner, small, opts);
  EXPECT_TRUE(sel_small.threshold_fallback);
  EXPECT_EQ(sel_small.chosen.algo, "bruck");

  const workload::CollectiveRequest large{workload::CollectiveKind::kAllToAll,
                                          mib(32), "large"};
  const auto sel_large = select_algorithm(planner, large, opts);
  EXPECT_FALSE(sel_large.threshold_fallback);
  EXPECT_EQ(sel_large.candidates.size(), 2u);
  EXPECT_LE(sel_large.chosen.pipelined_dct.ns(),
            sel_large.candidates.front().pipelined_dct.ns());
}

// Non-power-of-two domains can only run the universal algorithms; the
// selector must not materialize a recursive candidate that would throw.
TEST(AlgoSelect, NonPow2FallsBackToUniversalAlgorithms) {
  const int n = 6;
  Planner planner(topo::directed_ring(n, gbps(800)), paper_params(microseconds(10)));
  const workload::CollectiveRequest req{workload::CollectiveKind::kAllReduce,
                                        mib(16), "np2"};
  const auto sel = select_algorithm(planner, req);
  EXPECT_EQ(sel.candidates.size(), 1u);
  EXPECT_EQ(sel.chosen.algo, "ring");
}

TEST(AlgoSelect, RejectsNonSelectableKinds) {
  Planner planner(topo::directed_ring(8, gbps(800)), paper_params(microseconds(10)));
  const workload::CollectiveRequest req{workload::CollectiveKind::kBroadcast,
                                        mib(1), "bcast"};
  EXPECT_THROW((void)select_algorithm(planner, req), InvalidArgument);
}

// Deterministic: identical inputs produce identical selections (the sweep
// order is pinned and ties keep the earlier candidate).
TEST(AlgoSelect, Deterministic) {
  Planner planner(topo::directed_ring(8, gbps(800)), paper_params(microseconds(10)));
  const workload::CollectiveRequest req{workload::CollectiveKind::kAllReduce,
                                        mib(8), "det"};
  const auto a = select_algorithm(planner, req);
  const auto b = select_algorithm(planner, req);
  EXPECT_EQ(a.chosen.algo, b.chosen.algo);
  EXPECT_EQ(a.chosen.pipeline_chunks, b.chosen.pipeline_chunks);
  EXPECT_DOUBLE_EQ(a.chosen.pipelined_dct.ns(), b.chosen.pipelined_dct.ns());
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].algo, b.candidates[i].algo);
  }
}

// Natural granularity: pipeline_chunks == 0 asks the schedule. Ring
// allreduce steps move one chunk per pair, so its natural granularity is 1
// and the pipelined run must equal the barrier run.
TEST(Pipelined, NaturalChunksFromSchedule) {
  const int n = 8;
  const auto sched = collective::ring_allreduce(n, mib(2));
  EXPECT_EQ(sched.natural_pipeline_chunks(), 1);
  const auto plan = uniform_plan(sched, TopoChoice::kBase);
  auto barrier = make_sim(n, microseconds(10), false, 1);
  auto natural = make_sim(n, microseconds(10), true, 0);
  EXPECT_NEAR(natural.run(sched, plan).completion_time.ns(),
              barrier.run(sched, plan).completion_time.ns(), 1e-9);
}

TEST(Pipelined, RequiresConcurrentFlowPolicy) {
  SimConfig cfg;
  cfg.params = paper_params(microseconds(10));
  cfg.policy = sim::RatePolicy::kMaxMinFair;
  cfg.pipeline = true;
  FlowLevelSimulator sim(topo::directed_ring(4, gbps(800)),
                         Matching::rotation(4, 1), cfg);
  const auto sched = collective::ring_allreduce(4, mib(1));
  EXPECT_THROW((void)sim.run(sched, uniform_plan(sched, TopoChoice::kBase)),
               InvalidArgument);
}

}  // namespace
}  // namespace psd::core
