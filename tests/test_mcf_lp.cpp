#include "psd/flow/mcf_lp.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "psd/flow/ring_theta.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/rng.hpp"

namespace psd::flow {
namespace {

using topo::Matching;

TEST(McfLp, SingleCommodityDirectEdge) {
  topo::Graph g(2);
  g.add_edge(0, 1, gbps(800));
  const auto res = exact_concurrent_flow(g, {{0, 1, 1.0}}, gbps(800));
  EXPECT_NEAR(res.theta, 1.0, 1e-8);
  EXPECT_NEAR(res.flow.at(0, 0), 1.0, 1e-8);
}

TEST(McfLp, ParallelEdgesDoubleThroughput) {
  topo::Graph g(2);
  g.add_edge(0, 1, gbps(800));
  g.add_edge(0, 1, gbps(800));
  const auto res = exact_concurrent_flow(g, {{0, 1, 1.0}}, gbps(800));
  EXPECT_NEAR(res.theta, 2.0, 1e-8);
}

TEST(McfLp, TwoDisjointPaths) {
  // 0 -> 1 directly and 0 -> 2 -> 1: θ = 2 for a unit demand.
  topo::Graph g(3);
  g.add_edge(0, 1, gbps(800));
  g.add_edge(0, 2, gbps(800));
  g.add_edge(2, 1, gbps(800));
  const auto res = exact_concurrent_flow(g, {{0, 1, 1.0}}, gbps(800));
  EXPECT_NEAR(res.theta, 2.0, 1e-8);
}

TEST(McfLp, CompetingCommoditiesShareLink) {
  // Both commodities must cross the single middle link: θ = 1/2.
  topo::Graph g(4);
  g.add_edge(0, 2, gbps(800));
  g.add_edge(1, 2, gbps(800));
  g.add_edge(2, 3, gbps(800));
  const auto res =
      exact_concurrent_flow(g, {{0, 3, 1.0}, {1, 3, 1.0}}, gbps(800));
  EXPECT_NEAR(res.theta, 0.5, 1e-8);
}

TEST(McfLp, BidirectionalRingRotationSplitsBothWays) {
  // n=4 bidirectional ring, rotation by 1: optimal splits 3/4 clockwise and
  // 1/4 the long way; θ = 4/3.
  const auto g = topo::bidirectional_ring(4, gbps(800));
  const auto res = exact_concurrent_flow(g, Matching::rotation(4, 1), gbps(800));
  EXPECT_NEAR(res.theta, 4.0 / 3.0, 1e-7);
}

TEST(McfLp, MatchesRingClosedFormOnDirectedRings) {
  psd::Rng rng(99);
  for (const int n : {4, 6, 8}) {
    const auto g = topo::directed_ring(n, gbps(800));
    for (int trial = 0; trial < 4; ++trial) {
      const auto perm = rng.permutation(n);
      Matching m(n);
      for (int j = 0; j < n; ++j) {
        if (perm[static_cast<std::size_t>(j)] != j) {
          m.set(j, perm[static_cast<std::size_t>(j)]);
        }
      }
      if (m.active_pairs() == 0) continue;
      const auto lp = exact_concurrent_flow(g, m, gbps(800));
      const auto ring = ring_concurrent_flow(g, m, gbps(800));
      ASSERT_TRUE(ring.has_value());
      EXPECT_NEAR(lp.theta, ring->theta, 1e-6)
          << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(McfLp, DemandScalingInverselyScalesTheta) {
  topo::Graph g(2);
  g.add_edge(0, 1, gbps(800));
  const auto res = exact_concurrent_flow(g, {{0, 1, 2.0}}, gbps(800));
  EXPECT_NEAR(res.theta, 0.5, 1e-8);
}

TEST(McfLp, EmptyCommoditiesInfiniteTheta) {
  const auto g = topo::directed_ring(4, gbps(800));
  const auto res = exact_concurrent_flow(g, std::vector<Commodity>{}, gbps(800));
  EXPECT_TRUE(std::isinf(res.theta));
}

TEST(McfLp, DisconnectedCommodityThrows) {
  topo::Graph g(3);
  g.add_edge(0, 1, gbps(800));
  EXPECT_THROW((void)exact_concurrent_flow(g, {{0, 2, 1.0}}, gbps(800)),
               psd::InvalidArgument);
}

TEST(McfLp, RejectsMalformedCommodities) {
  const auto g = topo::directed_ring(4, gbps(800));
  EXPECT_THROW((void)exact_concurrent_flow(g, {{0, 0, 1.0}}, gbps(800)),
               psd::InvalidArgument);
  EXPECT_THROW((void)exact_concurrent_flow(g, {{0, 5, 1.0}}, gbps(800)),
               psd::InvalidArgument);
  EXPECT_THROW((void)exact_concurrent_flow(g, {{0, 1, -1.0}}, gbps(800)),
               psd::InvalidArgument);
}

TEST(McfLp, FlowsSatisfyCapacities) {
  const auto g = topo::bidirectional_ring(5, gbps(800));
  const auto res = exact_concurrent_flow(g, Matching::rotation(5, 2), gbps(800));
  const auto caps = normalized_capacities(g, gbps(800));
  const auto& loads = res.flow.edge_loads();
  for (int e = 0; e < g.num_edges(); ++e) {
    EXPECT_LE(loads[static_cast<std::size_t>(e)],
              caps[static_cast<std::size_t>(e)] + 1e-6);
  }
}

}  // namespace
}  // namespace psd::flow
