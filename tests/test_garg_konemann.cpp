#include "psd/flow/garg_konemann.hpp"

#include <chrono>
#include <cmath>

#include <gtest/gtest.h>

#include "psd/flow/mcf_lp.hpp"
#include "psd/flow/ring_theta.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/rng.hpp"

namespace psd::flow {
namespace {

using topo::Matching;

constexpr double kEps = 0.03;

/// GK must return a feasible flow whose θ is within (1−3ε) of optimal.
void expect_gk_close(double gk_theta, double exact_theta) {
  EXPECT_LE(gk_theta, exact_theta * (1.0 + 1e-6));
  EXPECT_GE(gk_theta, exact_theta * (1.0 - 3.0 * kEps));
}

TEST(GargKonemann, MatchesRingClosedFormOnRotations) {
  const int n = 16;
  const auto g = topo::directed_ring(n, gbps(800));
  for (int k : {1, 2, 5, 8, 15}) {
    const auto m = Matching::rotation(n, k);
    const auto gk = gk_concurrent_flow(g, m, gbps(800), {.epsilon = kEps});
    const auto exact = ring_concurrent_flow(g, m, gbps(800));
    ASSERT_TRUE(exact.has_value());
    expect_gk_close(gk.theta, exact->theta);
  }
}

TEST(GargKonemann, MatchesExactLpOnBidirectionalRing) {
  const auto g = topo::bidirectional_ring(4, gbps(800));
  const auto m = Matching::rotation(4, 1);
  const auto gk = gk_concurrent_flow(g, m, gbps(800), {.epsilon = kEps});
  const auto lp = exact_concurrent_flow(g, m, gbps(800));
  expect_gk_close(gk.theta, lp.theta);  // exact θ = 4/3
}

TEST(GargKonemann, MatchesExactLpOnHypercube) {
  const auto g = topo::hypercube(3, gbps(800));
  const auto m = Matching::rotation(8, 3);
  const auto gk = gk_concurrent_flow(g, m, gbps(800), {.epsilon = kEps});
  const auto lp = exact_concurrent_flow(g, m, gbps(800));
  expect_gk_close(gk.theta, lp.theta);
}

TEST(GargKonemann, FlowsAreStrictlyFeasible) {
  const auto g = topo::directed_ring(12, gbps(800));
  const auto m = Matching::rotation(12, 5);
  const auto gk = gk_concurrent_flow(g, m, gbps(800), {.epsilon = kEps});
  const auto caps = normalized_capacities(g, gbps(800));
  const auto& loads = gk.flow.edge_loads();
  for (int e = 0; e < g.num_edges(); ++e) {
    EXPECT_LE(loads[static_cast<std::size_t>(e)],
              caps[static_cast<std::size_t>(e)] + 1e-9);
  }
}

TEST(GargKonemann, RandomMatchingsAgainstClosedForm) {
  psd::Rng rng(4242);
  const int n = 12;
  const auto g = topo::directed_ring(n, gbps(800));
  for (int trial = 0; trial < 10; ++trial) {
    const auto perm = rng.permutation(n);
    Matching m(n);
    for (int j = 0; j < n; ++j) {
      if (perm[static_cast<std::size_t>(j)] != j) {
        m.set(j, perm[static_cast<std::size_t>(j)]);
      }
    }
    if (m.active_pairs() == 0) continue;
    const auto gk = gk_concurrent_flow(g, m, gbps(800), {.epsilon = kEps});
    const auto exact = ring_concurrent_flow(g, m, gbps(800));
    ASSERT_TRUE(exact.has_value());
    expect_gk_close(gk.theta, exact->theta);
  }
}

TEST(GargKonemann, TighterEpsilonTightensBound) {
  const auto g = topo::directed_ring(8, gbps(800));
  const auto m = Matching::rotation(8, 3);
  const auto loose = gk_concurrent_flow(g, m, gbps(800), {.epsilon = 0.2});
  const auto tight = gk_concurrent_flow(g, m, gbps(800), {.epsilon = 0.01});
  const double exact = 1.0 / 3.0;
  EXPECT_GE(tight.theta, exact * 0.97);
  EXPECT_GE(tight.theta, loose.theta * 0.99);
}

TEST(GargKonemann, EmptyCommoditiesInfiniteTheta) {
  const auto g = topo::directed_ring(4, gbps(800));
  const auto res =
      gk_concurrent_flow(g, std::vector<Commodity>{}, gbps(800), {});
  EXPECT_TRUE(std::isinf(res.theta));
}

TEST(GargKonemann, DisconnectedThrows) {
  topo::Graph g(3);
  g.add_edge(0, 1, gbps(800));
  EXPECT_THROW((void)gk_concurrent_flow(g, {{0, 2, 1.0}}, gbps(800), {}),
               psd::InvalidArgument);
}

TEST(GargKonemann, RejectsBadEpsilon) {
  const auto g = topo::directed_ring(4, gbps(800));
  const auto m = Matching::rotation(4, 1);
  EXPECT_THROW((void)gk_concurrent_flow(g, m, gbps(800), {.epsilon = 0.0}),
               psd::InvalidArgument);
  EXPECT_THROW((void)gk_concurrent_flow(g, m, gbps(800), {.epsilon = 0.7}),
               psd::InvalidArgument);
}

class GkRandomGraphP : public ::testing::TestWithParam<int> {};

TEST_P(GkRandomGraphP, MatchesExactLpOnRandomDigraphs) {
  // Random strongly-connected digraphs (a ring plus random chords with
  // random capacities) and random commodity sets: GK must stay within its
  // guarantee of the exact simplex LP optimum.
  psd::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const int n = 6;
  topo::Graph g(n);
  for (int j = 0; j < n; ++j) {
    g.add_edge(j, (j + 1) % n, gbps(rng.uniform(200.0, 800.0)));
  }
  const int extra = rng.uniform_int(2, 6);
  for (int e = 0; e < extra; ++e) {
    const int a = rng.uniform_int(0, n - 1);
    const int b = rng.uniform_int(0, n - 1);
    if (a != b) g.add_edge(a, b, gbps(rng.uniform(100.0, 800.0)));
  }
  std::vector<Commodity> commodities;
  const int k = rng.uniform_int(1, 4);
  for (int c = 0; c < k; ++c) {
    const int s = rng.uniform_int(0, n - 1);
    int d = rng.uniform_int(0, n - 1);
    if (d == s) d = (d + 1) % n;
    commodities.push_back({s, d, rng.uniform(0.5, 2.0)});
  }
  const auto lp = exact_concurrent_flow(g, commodities, gbps(800));
  const auto gk = gk_concurrent_flow(g, commodities, gbps(800), {.epsilon = kEps});
  expect_gk_close(gk.theta, lp.theta);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GkRandomGraphP, ::testing::Range(0, 12));

TEST(GargKonemannWarmStart, MatchesColdExactlyOnDirectedRing) {
  // On a directed ring every commodity has exactly one path, so path reuse
  // cannot change any routing decision: with single-demand visit
  // granularity (the window mode, and the phase mode at
  // phase_visit_routings = 1) the push sequence — and therefore θ and
  // every flow — matches the cold reference to the last bit. The phase
  // default (batched routings per visit) interleaves pushes differently
  // and is covered by the guarantee tests instead.
  const auto g = topo::directed_ring(12, gbps(800));
  psd::Rng rng(31337);
  for (int trial = 0; trial < 5; ++trial) {
    const auto perm = rng.permutation(12);
    Matching m(12);
    for (int j = 0; j < 12; ++j) {
      if (perm[static_cast<std::size_t>(j)] != j) {
        m.set(j, perm[static_cast<std::size_t>(j)]);
      }
    }
    if (m.active_pairs() == 0) continue;
    const auto cold = gk_concurrent_flow(g, m, gbps(800),
                                         {.epsilon = kEps, .warm_start = false});
    const GargKonemannOptions window{.epsilon = kEps,
                                     .warm_start = true,
                                     .phase_schedule = false};
    GargKonemannOptions phase1{.epsilon = kEps, .warm_start = true};
    phase1.phase_visit_routings = 1;
    for (const auto& opts : {window, phase1}) {
      const auto warm = gk_concurrent_flow(g, m, gbps(800), opts);
      EXPECT_EQ(warm.theta, cold.theta);  // bitwise: unique paths
      const auto dw = warm.flow.densify();
      const auto dc = cold.flow.densify();
      ASSERT_EQ(dw.size(), dc.size());
      for (std::size_t k = 0; k < dw.size(); ++k) {
        for (std::size_t e = 0; e < dw[k].size(); ++e) {
          EXPECT_EQ(dw[k][e], dc[k][e]);
        }
      }
    }
  }
}

TEST(GargKonemannWarmStart, StaysWithinGuaranteeOnTorus) {
  // Path reuse weakens the per-push shortest-path approximation to (1+ε)³;
  // the end-to-end θ must still satisfy the FPTAS bound against cold GK's
  // certified value (both are ≤ θ* by the feasibility rescale).
  const auto g = topo::torus_2d(4, 4, gbps(800));
  for (int rot : {1, 3, 5, 7}) {
    const auto m = Matching::rotation(16, rot);
    const auto warm = gk_concurrent_flow(g, m, gbps(800),
                                         {.epsilon = kEps, .warm_start = true});
    const auto cold = gk_concurrent_flow(g, m, gbps(800),
                                         {.epsilon = kEps, .warm_start = false});
    EXPECT_LE(std::abs(warm.theta - cold.theta), 3.0 * kEps * cold.theta)
        << "rot=" << rot;
  }
}

TEST(GargKonemannWarmStart, ThetaOnlyMatchesFullResult) {
  const auto g = topo::torus_2d(4, 4, gbps(800));
  const auto m = Matching::rotation(16, 5);
  for (bool warm : {true, false}) {
    const GargKonemannOptions opts{.epsilon = kEps, .warm_start = warm};
    const auto full = gk_concurrent_flow(g, m, gbps(800), opts);
    const double theta_only = gk_theta_only(g, m, gbps(800), opts);
    // θ-only aggregates loads in push order rather than commodity order, so
    // the rescale can differ by roundoff but nothing more.
    EXPECT_NEAR(theta_only, full.theta, 1e-12) << "warm=" << warm;
  }
}

TEST(GargKonemannWarmStart, ParallelExecutionIsBitwiseIdentical) {
  // `parallel` toggles where the initial path batch runs, not what it
  // computes: per-commodity state is disjoint and lengths are read-only
  // during the batch.
  const auto g = topo::torus_2d(4, 4, gbps(800));
  const auto m = Matching::rotation(16, 7);
  const auto par = gk_concurrent_flow(
      g, m, gbps(800), {.epsilon = kEps, .warm_start = true, .parallel = true});
  const auto ser = gk_concurrent_flow(
      g, m, gbps(800), {.epsilon = kEps, .warm_start = true, .parallel = false});
  EXPECT_EQ(par.theta, ser.theta);
  const auto dp = par.flow.densify();
  const auto ds = ser.flow.densify();
  ASSERT_EQ(dp.size(), ds.size());
  for (std::size_t k = 0; k < dp.size(); ++k) {
    for (std::size_t e = 0; e < dp[k].size(); ++e) {
      EXPECT_EQ(dp[k][e], ds[k][e]);
    }
  }
}

TEST(GargKonemannWarmStart, DisconnectedThrowsWithWarmStart) {
  topo::Graph g(3);
  g.add_edge(0, 1, gbps(800));
  g.add_edge(1, 0, gbps(800));
  g.add_edge(2, 0, gbps(800));
  EXPECT_THROW((void)gk_concurrent_flow(g, {{0, 2, 1.0}}, gbps(800),
                                        {.warm_start = true}),
               psd::InvalidArgument);
  EXPECT_THROW((void)gk_theta_only(g, {{0, 2, 1.0}}, gbps(800),
                                   {.warm_start = true, .parallel = true}),
               psd::InvalidArgument);
}

TEST(GargKonemannPhase, AllModesStayWithinGuaranteeOnRandomDigraphs) {
  // The randomized equivalence suite for the phase schedule: every solver
  // mode — legacy cold, reuse window, phase + binary heap, phase + bucket
  // queue, phase with single routings — must land within (1 − 3ε) of the
  // exact LP optimum (and never above it: the feasibility rescale certifies
  // every reported θ).
  psd::Rng rng(777);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 7;
    topo::Graph g(n);
    for (int j = 0; j < n; ++j) {
      g.add_edge(j, (j + 1) % n, gbps(rng.uniform(200.0, 800.0)));
    }
    const int extra = rng.uniform_int(3, 8);
    for (int e = 0; e < extra; ++e) {
      const int a = rng.uniform_int(0, n - 1);
      const int b = rng.uniform_int(0, n - 1);
      if (a != b) g.add_edge(a, b, gbps(rng.uniform(100.0, 800.0)));
    }
    std::vector<Commodity> commodities;
    const int k = rng.uniform_int(2, 5);
    for (int c = 0; c < k; ++c) {
      const int s = rng.uniform_int(0, n - 1);
      int d = rng.uniform_int(0, n - 1);
      if (d == s) d = (d + 1) % n;
      commodities.push_back({s, d, rng.uniform(0.5, 2.0)});
    }
    const double lp = exact_concurrent_flow(g, commodities, gbps(800)).theta;

    GargKonemannOptions cold{.epsilon = kEps, .warm_start = false};
    GargKonemannOptions window{.epsilon = kEps, .phase_schedule = false};
    GargKonemannOptions phase_bucket{.epsilon = kEps};
    GargKonemannOptions phase_heap{.epsilon = kEps};
    phase_heap.sp_engine = GkSpEngine::kBinaryHeap;
    GargKonemannOptions phase_single{.epsilon = kEps};
    phase_single.phase_visit_routings = 1;
    for (const auto& opts :
         {cold, window, phase_bucket, phase_heap, phase_single}) {
      const double theta = gk_theta_only(g, commodities, gbps(800), opts);
      expect_gk_close(theta, lp);
    }
  }
}

TEST(GargKonemannPhase, SameSourceCommoditiesBatchIntoOneSearch) {
  // Several commodities sharing a source exercise the grouped multi-target
  // searches; θ must still match the exact LP within the guarantee, for
  // both engines.
  const auto g = topo::torus_2d(3, 3, gbps(800));
  const std::vector<Commodity> commodities = {
      {0, 4, 1.0}, {0, 8, 1.0}, {0, 2, 2.0}, {4, 0, 1.0}, {4, 6, 0.5}};
  const double lp = exact_concurrent_flow(g, commodities, gbps(800)).theta;
  GargKonemannOptions bucket{.epsilon = kEps};
  GargKonemannOptions heap{.epsilon = kEps};
  heap.sp_engine = GkSpEngine::kBinaryHeap;
  expect_gk_close(gk_theta_only(g, commodities, gbps(800), bucket), lp);
  expect_gk_close(gk_theta_only(g, commodities, gbps(800), heap), lp);
  const auto full = gk_concurrent_flow(g, commodities, gbps(800), bucket);
  expect_gk_close(full.theta, lp);
}

TEST(GargKonemannPhase, BucketAndHeapEnginesAgreeWithinTolerance) {
  // The engines route along (possibly) different approximate shortest
  // paths, so bitwise equality is not expected — but both are certified
  // feasible and within the same guarantee, so they bracket each other.
  const auto g = topo::torus_2d(4, 4, gbps(800));
  for (int rot : {1, 5, 7}) {
    const auto m = Matching::rotation(16, rot);
    GargKonemannOptions bucket{.epsilon = kEps};
    GargKonemannOptions heap{.epsilon = kEps};
    heap.sp_engine = GkSpEngine::kBinaryHeap;
    const double tb = gk_theta_only(g, m, gbps(800), bucket);
    const double th = gk_theta_only(g, m, gbps(800), heap);
    EXPECT_LE(std::abs(tb - th), 3.0 * kEps * std::max(tb, th)) << rot;
  }
}

TEST(GargKonemannPhase, RejectsBadVisitRoutings) {
  const auto g = topo::directed_ring(4, gbps(800));
  const auto m = Matching::rotation(4, 1);
  GargKonemannOptions opts{.epsilon = kEps};
  opts.phase_visit_routings = 0;
  EXPECT_THROW((void)gk_concurrent_flow(g, m, gbps(800), opts),
               psd::InvalidArgument);
}

TEST(GargKonemann, PreCancelledTokenThrowsCancelled) {
  const auto g = topo::directed_ring(8, gbps(800));
  const auto m = Matching::rotation(8, 3);
  util::CancellationToken token;
  token.cancel();
  EXPECT_THROW((void)gk_concurrent_flow(g, m, gbps(800),
                                        {.epsilon = kEps, .cancel = &token}),
               psd::Cancelled);
}

TEST(GargKonemann, ExpiredDeadlineThrowsCancelled) {
  const auto g = topo::directed_ring(8, gbps(800));
  const auto m = Matching::rotation(8, 3);
  util::CancellationToken token;
  token.set_deadline_after(std::chrono::nanoseconds(-1));
  EXPECT_THROW((void)gk_concurrent_flow(g, m, gbps(800),
                                        {.epsilon = kEps, .cancel = &token}),
               psd::Cancelled);
}

// The cancel hook must be observability-only: an armed-but-unfired token
// changes nothing about the result, and rerunning after a cancelled
// attempt is bit-exact to never having cancelled (GK is deterministic and
// the token is polled, never consulted for decisions).
TEST(GargKonemann, UnfiredTokenLeavesResultBitExact) {
  const auto g = topo::hypercube(3, gbps(800));
  const auto m = Matching::rotation(8, 3);
  const auto plain = gk_concurrent_flow(g, m, gbps(800), {.epsilon = kEps});

  util::CancellationToken token;
  token.set_deadline_after(std::chrono::minutes(10));
  const auto gated = gk_concurrent_flow(
      g, m, gbps(800), {.epsilon = kEps, .cancel = &token});
  EXPECT_EQ(gated.theta, plain.theta);
  EXPECT_EQ(gated.flow.edge_loads(), plain.flow.edge_loads());

  util::CancellationToken fired;
  fired.cancel();
  EXPECT_THROW((void)gk_concurrent_flow(g, m, gbps(800),
                                        {.epsilon = kEps, .cancel = &fired}),
               psd::Cancelled);
  const auto after = gk_concurrent_flow(g, m, gbps(800), {.epsilon = kEps});
  EXPECT_EQ(after.theta, plain.theta);
  EXPECT_EQ(after.flow.edge_loads(), plain.flow.edge_loads());
}

TEST(GargKonemann, HeterogeneousDemands) {
  // Demand-2 commodity halves its θ relative to demand-1 on a shared link.
  topo::Graph g(3);
  g.add_edge(0, 1, gbps(800));
  g.add_edge(1, 2, gbps(800));
  const auto res = gk_concurrent_flow(
      g, std::vector<Commodity>{{0, 2, 2.0}, {1, 2, 1.0}}, gbps(800),
      {.epsilon = kEps});
  // Link 1->2 carries 3 demand units: θ* = 1/3.
  expect_gk_close(res.theta, 1.0 / 3.0);
}

}  // namespace
}  // namespace psd::flow
