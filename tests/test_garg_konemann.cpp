#include "psd/flow/garg_konemann.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "psd/flow/mcf_lp.hpp"
#include "psd/flow/ring_theta.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/rng.hpp"

namespace psd::flow {
namespace {

using topo::Matching;

constexpr double kEps = 0.03;

/// GK must return a feasible flow whose θ is within (1−3ε) of optimal.
void expect_gk_close(double gk_theta, double exact_theta) {
  EXPECT_LE(gk_theta, exact_theta * (1.0 + 1e-6));
  EXPECT_GE(gk_theta, exact_theta * (1.0 - 3.0 * kEps));
}

TEST(GargKonemann, MatchesRingClosedFormOnRotations) {
  const int n = 16;
  const auto g = topo::directed_ring(n, gbps(800));
  for (int k : {1, 2, 5, 8, 15}) {
    const auto m = Matching::rotation(n, k);
    const auto gk = gk_concurrent_flow(g, m, gbps(800), {.epsilon = kEps});
    const auto exact = ring_concurrent_flow(g, m, gbps(800));
    ASSERT_TRUE(exact.has_value());
    expect_gk_close(gk.theta, exact->theta);
  }
}

TEST(GargKonemann, MatchesExactLpOnBidirectionalRing) {
  const auto g = topo::bidirectional_ring(4, gbps(800));
  const auto m = Matching::rotation(4, 1);
  const auto gk = gk_concurrent_flow(g, m, gbps(800), {.epsilon = kEps});
  const auto lp = exact_concurrent_flow(g, m, gbps(800));
  expect_gk_close(gk.theta, lp.theta);  // exact θ = 4/3
}

TEST(GargKonemann, MatchesExactLpOnHypercube) {
  const auto g = topo::hypercube(3, gbps(800));
  const auto m = Matching::rotation(8, 3);
  const auto gk = gk_concurrent_flow(g, m, gbps(800), {.epsilon = kEps});
  const auto lp = exact_concurrent_flow(g, m, gbps(800));
  expect_gk_close(gk.theta, lp.theta);
}

TEST(GargKonemann, FlowsAreStrictlyFeasible) {
  const auto g = topo::directed_ring(12, gbps(800));
  const auto m = Matching::rotation(12, 5);
  const auto gk = gk_concurrent_flow(g, m, gbps(800), {.epsilon = kEps});
  const auto caps = normalized_capacities(g, gbps(800));
  for (int e = 0; e < g.num_edges(); ++e) {
    double load = 0.0;
    for (const auto& f : gk.flow) load += f[static_cast<std::size_t>(e)];
    EXPECT_LE(load, caps[static_cast<std::size_t>(e)] + 1e-9);
  }
}

TEST(GargKonemann, RandomMatchingsAgainstClosedForm) {
  psd::Rng rng(4242);
  const int n = 12;
  const auto g = topo::directed_ring(n, gbps(800));
  for (int trial = 0; trial < 10; ++trial) {
    const auto perm = rng.permutation(n);
    Matching m(n);
    for (int j = 0; j < n; ++j) {
      if (perm[static_cast<std::size_t>(j)] != j) {
        m.set(j, perm[static_cast<std::size_t>(j)]);
      }
    }
    if (m.active_pairs() == 0) continue;
    const auto gk = gk_concurrent_flow(g, m, gbps(800), {.epsilon = kEps});
    const auto exact = ring_concurrent_flow(g, m, gbps(800));
    ASSERT_TRUE(exact.has_value());
    expect_gk_close(gk.theta, exact->theta);
  }
}

TEST(GargKonemann, TighterEpsilonTightensBound) {
  const auto g = topo::directed_ring(8, gbps(800));
  const auto m = Matching::rotation(8, 3);
  const auto loose = gk_concurrent_flow(g, m, gbps(800), {.epsilon = 0.2});
  const auto tight = gk_concurrent_flow(g, m, gbps(800), {.epsilon = 0.01});
  const double exact = 1.0 / 3.0;
  EXPECT_GE(tight.theta, exact * 0.97);
  EXPECT_GE(tight.theta, loose.theta * 0.99);
}

TEST(GargKonemann, EmptyCommoditiesInfiniteTheta) {
  const auto g = topo::directed_ring(4, gbps(800));
  const auto res =
      gk_concurrent_flow(g, std::vector<Commodity>{}, gbps(800), {});
  EXPECT_TRUE(std::isinf(res.theta));
}

TEST(GargKonemann, DisconnectedThrows) {
  topo::Graph g(3);
  g.add_edge(0, 1, gbps(800));
  EXPECT_THROW((void)gk_concurrent_flow(g, {{0, 2, 1.0}}, gbps(800), {}),
               psd::InvalidArgument);
}

TEST(GargKonemann, RejectsBadEpsilon) {
  const auto g = topo::directed_ring(4, gbps(800));
  const auto m = Matching::rotation(4, 1);
  EXPECT_THROW((void)gk_concurrent_flow(g, m, gbps(800), {.epsilon = 0.0}),
               psd::InvalidArgument);
  EXPECT_THROW((void)gk_concurrent_flow(g, m, gbps(800), {.epsilon = 0.7}),
               psd::InvalidArgument);
}

class GkRandomGraphP : public ::testing::TestWithParam<int> {};

TEST_P(GkRandomGraphP, MatchesExactLpOnRandomDigraphs) {
  // Random strongly-connected digraphs (a ring plus random chords with
  // random capacities) and random commodity sets: GK must stay within its
  // guarantee of the exact simplex LP optimum.
  psd::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const int n = 6;
  topo::Graph g(n);
  for (int j = 0; j < n; ++j) {
    g.add_edge(j, (j + 1) % n, gbps(rng.uniform(200.0, 800.0)));
  }
  const int extra = rng.uniform_int(2, 6);
  for (int e = 0; e < extra; ++e) {
    const int a = rng.uniform_int(0, n - 1);
    const int b = rng.uniform_int(0, n - 1);
    if (a != b) g.add_edge(a, b, gbps(rng.uniform(100.0, 800.0)));
  }
  std::vector<Commodity> commodities;
  const int k = rng.uniform_int(1, 4);
  for (int c = 0; c < k; ++c) {
    const int s = rng.uniform_int(0, n - 1);
    int d = rng.uniform_int(0, n - 1);
    if (d == s) d = (d + 1) % n;
    commodities.push_back({s, d, rng.uniform(0.5, 2.0)});
  }
  const auto lp = exact_concurrent_flow(g, commodities, gbps(800));
  const auto gk = gk_concurrent_flow(g, commodities, gbps(800), {.epsilon = kEps});
  expect_gk_close(gk.theta, lp.theta);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GkRandomGraphP, ::testing::Range(0, 12));

TEST(GargKonemann, HeterogeneousDemands) {
  // Demand-2 commodity halves its θ relative to demand-1 on a shared link.
  topo::Graph g(3);
  g.add_edge(0, 1, gbps(800));
  g.add_edge(1, 2, gbps(800));
  const auto res = gk_concurrent_flow(
      g, std::vector<Commodity>{{0, 2, 2.0}, {1, 2, 1.0}}, gbps(800),
      {.epsilon = kEps});
  // Link 1->2 carries 3 demand units: θ* = 1/3.
  expect_gk_close(res.theta, 1.0 / 3.0);
}

}  // namespace
}  // namespace psd::flow
