#include "psd/topo/shortest_path.hpp"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "psd/topo/builders.hpp"
#include "psd/util/rng.hpp"

namespace psd::topo {
namespace {

TEST(Bfs, DirectedRingDistances) {
  const Graph g = directed_ring(6, gbps(1));
  const auto d = bfs_hops(g, 0);
  for (int v = 0; v < 6; ++v) EXPECT_EQ(d[static_cast<std::size_t>(v)], v);
}

TEST(Bfs, BidirectionalRingDistances) {
  const Graph g = bidirectional_ring(6, gbps(1));
  const auto d = bfs_hops(g, 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[5], 1);
  EXPECT_EQ(d[3], 3);
  EXPECT_EQ(d[2], 2);
}

TEST(Bfs, UnreachableNodes) {
  Graph g(3);
  g.add_edge(0, 1, gbps(1));
  const auto d = bfs_hops(g, 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(Bfs, AllPairs) {
  const Graph g = directed_ring(4, gbps(1));
  const auto apsp = all_pairs_hops(g);
  for (int u = 0; u < 4; ++u) {
    for (int v = 0; v < 4; ++v) {
      EXPECT_EQ(apsp[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)],
                ((v - u) % 4 + 4) % 4);
    }
  }
}

TEST(Dijkstra, MatchesBfsOnUnitLengths) {
  const Graph g = bidirectional_ring(8, gbps(1));
  const std::vector<double> unit(static_cast<std::size_t>(g.num_edges()), 1.0);
  const auto dj = dijkstra(g, 2, unit);
  const auto bfs = bfs_hops(g, 2);
  for (int v = 0; v < 8; ++v) {
    EXPECT_DOUBLE_EQ(dj.dist[static_cast<std::size_t>(v)],
                     static_cast<double>(bfs[static_cast<std::size_t>(v)]));
  }
}

TEST(Dijkstra, PrefersCheaperLongerPath) {
  // 0 -> 1 -> 2 with cheap edges vs a direct expensive edge 0 -> 2.
  Graph g(3);
  const EdgeId a = g.add_edge(0, 1, gbps(1));
  const EdgeId b = g.add_edge(1, 2, gbps(1));
  const EdgeId c = g.add_edge(0, 2, gbps(1));
  const auto dj = dijkstra(g, 0, {1.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(dj.dist[2], 2.0);
  const auto path = extract_path(g, dj, 0, 2);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], a);
  EXPECT_EQ(path[1], b);
  (void)c;
}

TEST(Dijkstra, InfiniteLengthDeletesEdge) {
  Graph g(3);
  g.add_edge(0, 1, gbps(1));
  g.add_edge(1, 2, gbps(1));
  const double inf = std::numeric_limits<double>::infinity();
  const auto dj = dijkstra(g, 0, {1.0, inf});
  EXPECT_TRUE(std::isinf(dj.dist[2]));
  EXPECT_TRUE(extract_path(g, dj, 0, 2).empty());
}

TEST(Dijkstra, RejectsWrongLengthVector) {
  const Graph g = directed_ring(4, gbps(1));
  EXPECT_THROW((void)dijkstra(g, 0, {1.0}), psd::InvalidArgument);
}

TEST(Dijkstra, EarlyStopMatchesFullRunForDestination) {
  const Graph g = bidirectional_ring(10, gbps(1));
  std::vector<double> len(static_cast<std::size_t>(g.num_edges()));
  for (std::size_t e = 0; e < len.size(); ++e) {
    len[e] = 1.0 + 0.1 * static_cast<double>(e % 7);  // break symmetry
  }
  for (NodeId dst = 0; dst < 10; ++dst) {
    const auto full = dijkstra(g, 3, len);
    const auto stopped = dijkstra(g, 3, len, dst);
    EXPECT_DOUBLE_EQ(stopped.dist[static_cast<std::size_t>(dst)],
                     full.dist[static_cast<std::size_t>(dst)]);
    // The parent chain to dst is final: identical extracted path.
    const auto pf = extract_path(g, full, 3, dst);
    const auto ps = extract_path(g, stopped, 3, dst);
    EXPECT_EQ(pf, ps) << "dst=" << dst;
  }
}

TEST(Dijkstra, EarlyStopUnreachableDestination) {
  Graph g(3);
  g.add_edge(0, 1, gbps(1));
  const std::vector<double> len(1, 1.0);
  const auto res = dijkstra(g, 0, len, 2);
  EXPECT_TRUE(std::isinf(res.dist[2]));
  EXPECT_TRUE(extract_path(g, res, 0, 2).empty());
}

TEST(ExtractPath, SourceEqualsDestination) {
  const Graph g = directed_ring(4, gbps(1));
  const std::vector<double> unit(4, 1.0);
  const auto dj = dijkstra(g, 1, unit);
  EXPECT_TRUE(extract_path(g, dj, 1, 1).empty());
}

// ---- Bucket-queue SSSP ---------------------------------------------------

/// Random strongly-connected digraph: a ring plus chords, random lengths.
Graph random_digraph(psd::Rng& rng, int n, int extra_edges) {
  Graph g(n);
  for (int v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n, gbps(1));
  for (int e = 0; e < extra_edges; ++e) {
    const int a = rng.uniform_int(0, n - 1);
    const int b = rng.uniform_int(0, n - 1);
    if (a != b) g.add_edge(a, b, gbps(1));
  }
  return g;
}

std::vector<double> random_lengths(psd::Rng& rng, const Graph& g, double lo,
                                   double hi) {
  std::vector<double> len(static_cast<std::size_t>(g.num_edges()));
  for (auto& l : len) l = rng.uniform(lo, hi);
  return len;
}

double path_length(const std::vector<EdgeId>& path,
                   const std::vector<double>& len) {
  double total = 0.0;
  for (EdgeId e : path) total += len[static_cast<std::size_t>(e)];
  return total;
}

TEST(BucketSssp, AgreesWithDijkstraWithinQuantizationBound) {
  // The engine floors every edge length to quanta, so for each node the
  // quantized distance never exceeds the true distance and undershoots by
  // at most one quantum per hop; the recorded parent chain is a real path
  // whose true length is within (hops)·q of optimal.
  psd::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = rng.uniform_int(5, 24);
    const Graph g = random_digraph(rng, n, rng.uniform_int(0, 3 * n));
    const auto len = random_lengths(rng, g, 0.05, 2.0);
    const double q = rng.uniform(0.001, 0.05);
    const auto exact = dijkstra(g, 0, len);
    const auto approx = bucket_sssp(g, 0, len, q);
    const double slack = static_cast<double>(n - 1) * q;
    for (NodeId v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      ASSERT_TRUE(std::isfinite(approx.dist[vi])) << "v=" << v;
      EXPECT_LE(approx.dist[vi], exact.dist[vi] + 1e-12);
      EXPECT_GE(approx.dist[vi], exact.dist[vi] - slack - 1e-12);
      const auto path = extract_path(g, approx, 0, v);
      if (v != 0) {
        ASSERT_FALSE(path.empty());
        EXPECT_LE(path_length(path, len), exact.dist[vi] + slack + 1e-12);
      }
    }
  }
}

TEST(BucketSssp, ExactWhenLengthsAreMultiplesOfQuantum) {
  // Lengths that are exact multiples of q lose nothing to flooring: the
  // quantized distances equal Dijkstra's.
  const Graph g = bidirectional_ring(10, gbps(1));
  std::vector<double> len(static_cast<std::size_t>(g.num_edges()));
  psd::Rng rng(7);
  for (auto& l : len) l = 0.25 * rng.uniform_int(1, 12);
  const auto exact = dijkstra(g, 3, len);
  const auto approx = bucket_sssp(g, 3, len, 0.25);
  for (int v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(approx.dist[static_cast<std::size_t>(v)],
                     exact.dist[static_cast<std::size_t>(v)]);
  }
}

TEST(BucketSssp, RadiusPrunesFarNodes) {
  const Graph g = directed_ring(8, gbps(1));
  const std::vector<double> unit(8, 1.0);
  // Radius 3.5 with unit lengths: nodes 0..3 reachable, 4..7 pruned.
  const auto res = bucket_sssp(g, 0, unit, 0.5, /*radius=*/3.5);
  for (int v = 0; v <= 3; ++v) {
    EXPECT_TRUE(std::isfinite(res.dist[static_cast<std::size_t>(v)])) << v;
  }
  for (int v = 4; v < 8; ++v) {
    EXPECT_TRUE(std::isinf(res.dist[static_cast<std::size_t>(v)])) << v;
  }
}

TEST(BucketSssp, EarlyStopMatchesFullRunForDestination) {
  psd::Rng rng(123);
  const Graph g = random_digraph(rng, 12, 10);
  const auto len = random_lengths(rng, g, 0.1, 1.0);
  for (NodeId dst = 1; dst < 12; ++dst) {
    const auto full = bucket_sssp(g, 0, len, 0.01);
    const auto stopped = bucket_sssp(
        g, 0, len, 0.01, std::numeric_limits<double>::infinity(), dst);
    EXPECT_DOUBLE_EQ(stopped.dist[static_cast<std::size_t>(dst)],
                     full.dist[static_cast<std::size_t>(dst)]);
  }
}

TEST(BucketSssp, InfiniteLengthDeletesEdgeAndUnreachableStaysInf) {
  Graph g(3);
  g.add_edge(0, 1, gbps(1));
  g.add_edge(1, 2, gbps(1));
  const double inf = std::numeric_limits<double>::infinity();
  const auto res = bucket_sssp(g, 0, {0.5, inf}, 0.1);
  EXPECT_DOUBLE_EQ(res.dist[1], 0.5);
  EXPECT_TRUE(std::isinf(res.dist[2]));
  EXPECT_TRUE(extract_path(g, res, 0, 2).empty());
}

TEST(BucketSssp, RejectsBadArguments) {
  const Graph g = directed_ring(4, gbps(1));
  const std::vector<double> unit(4, 1.0);
  EXPECT_THROW((void)bucket_sssp(g, -1, unit, 0.1), psd::InvalidArgument);
  EXPECT_THROW((void)bucket_sssp(g, 0, {1.0}, 0.1), psd::InvalidArgument);
  EXPECT_THROW((void)bucket_sssp(g, 0, unit, 0.0), psd::InvalidArgument);
  // Quantum so fine the bucket range would explode (memory guard).
  EXPECT_THROW((void)bucket_sssp(g, 0, unit, 1e-12), psd::InvalidArgument);
}

TEST(BucketSssp, ReducedCostSearchWithFeasiblePotentialRecoversDistances) {
  // Feed the engine an exact distance field as the potential, grow a few
  // lengths (monotone — the field stays a feasible lower bound), and check
  // the reduced-cost search still reports distances within the
  // quantization bound of a fresh Dijkstra. This is the warm-start pattern
  // the Garg–Könemann phase schedule relies on.
  psd::Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = rng.uniform_int(6, 16);
    const Graph g = random_digraph(rng, n, rng.uniform_int(0, 2 * n));
    auto len = random_lengths(rng, g, 0.1, 1.0);
    const auto before = dijkstra(g, 0, len);
    std::vector<double> pot = before.dist;
    // Grow a random subset of lengths (duals only grow in GK).
    for (auto& l : len) {
      if (rng.next_double() < 0.3) l *= rng.uniform(1.0, 1.5);
    }
    const auto after = dijkstra(g, 0, len);

    CsrAdjacency csr;
    csr.build(g);
    std::vector<double> arc_len(len.size());
    for (std::size_t e = 0; e < len.size(); ++e) {
      arc_len[static_cast<std::size_t>(csr.arc_of_edge[e])] = len[e];
    }
    const double q = 0.01;
    BucketQueueSssp engine;
    engine.run(csr, 0, arc_len, q, /*radius_quanta=*/100000, {}, pot.data());
    const double slack = static_cast<double>(n - 1) * q;
    for (int v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      const auto qd = engine.quantized_dist(v);
      ASSERT_NE(qd, BucketQueueSssp::kUnsettled) << v;
      // True distance = potential + reduced distance (quantized down).
      const double recovered = pot[vi] + q * static_cast<double>(qd);
      EXPECT_LE(recovered, after.dist[vi] + 1e-12);
      EXPECT_GE(recovered, after.dist[vi] - slack - 1e-12);
    }
  }
}

TEST(BucketSssp, EngineReuseAcrossDifferentGraphsAndRadii) {
  // One engine, many runs: scratch reuse must not leak state between runs
  // (epoch stamping) or between graphs of different sizes.
  BucketQueueSssp engine;
  psd::Rng rng(55);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = rng.uniform_int(4, 20);
    const Graph g = random_digraph(rng, n, rng.uniform_int(0, n));
    const auto len = random_lengths(rng, g, 0.2, 1.0);
    CsrAdjacency csr;
    csr.build(g);
    std::vector<double> arc_len(len.size());
    for (std::size_t e = 0; e < len.size(); ++e) {
      arc_len[static_cast<std::size_t>(csr.arc_of_edge[e])] = len[e];
    }
    const double q = 0.02;
    const auto radius = static_cast<std::int32_t>(rng.uniform_int(50, 2000));
    engine.run(csr, 0, arc_len, q, radius);
    const auto exact = dijkstra(g, 0, len);
    for (int v = 0; v < n; ++v) {
      const auto qd = engine.quantized_dist(v);
      if (qd == BucketQueueSssp::kUnsettled) {
        // Unsettled ⇒ provably beyond the radius.
        EXPECT_GT(exact.dist[static_cast<std::size_t>(v)],
                  q * static_cast<double>(radius));
      } else {
        EXPECT_LE(q * static_cast<double>(qd),
                  exact.dist[static_cast<std::size_t>(v)] + 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace psd::topo
