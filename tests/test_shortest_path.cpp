#include "psd/topo/shortest_path.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "psd/topo/builders.hpp"

namespace psd::topo {
namespace {

TEST(Bfs, DirectedRingDistances) {
  const Graph g = directed_ring(6, gbps(1));
  const auto d = bfs_hops(g, 0);
  for (int v = 0; v < 6; ++v) EXPECT_EQ(d[static_cast<std::size_t>(v)], v);
}

TEST(Bfs, BidirectionalRingDistances) {
  const Graph g = bidirectional_ring(6, gbps(1));
  const auto d = bfs_hops(g, 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[5], 1);
  EXPECT_EQ(d[3], 3);
  EXPECT_EQ(d[2], 2);
}

TEST(Bfs, UnreachableNodes) {
  Graph g(3);
  g.add_edge(0, 1, gbps(1));
  const auto d = bfs_hops(g, 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(Bfs, AllPairs) {
  const Graph g = directed_ring(4, gbps(1));
  const auto apsp = all_pairs_hops(g);
  for (int u = 0; u < 4; ++u) {
    for (int v = 0; v < 4; ++v) {
      EXPECT_EQ(apsp[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)],
                ((v - u) % 4 + 4) % 4);
    }
  }
}

TEST(Dijkstra, MatchesBfsOnUnitLengths) {
  const Graph g = bidirectional_ring(8, gbps(1));
  const std::vector<double> unit(static_cast<std::size_t>(g.num_edges()), 1.0);
  const auto dj = dijkstra(g, 2, unit);
  const auto bfs = bfs_hops(g, 2);
  for (int v = 0; v < 8; ++v) {
    EXPECT_DOUBLE_EQ(dj.dist[static_cast<std::size_t>(v)],
                     static_cast<double>(bfs[static_cast<std::size_t>(v)]));
  }
}

TEST(Dijkstra, PrefersCheaperLongerPath) {
  // 0 -> 1 -> 2 with cheap edges vs a direct expensive edge 0 -> 2.
  Graph g(3);
  const EdgeId a = g.add_edge(0, 1, gbps(1));
  const EdgeId b = g.add_edge(1, 2, gbps(1));
  const EdgeId c = g.add_edge(0, 2, gbps(1));
  const auto dj = dijkstra(g, 0, {1.0, 1.0, 5.0});
  EXPECT_DOUBLE_EQ(dj.dist[2], 2.0);
  const auto path = extract_path(g, dj, 0, 2);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], a);
  EXPECT_EQ(path[1], b);
  (void)c;
}

TEST(Dijkstra, InfiniteLengthDeletesEdge) {
  Graph g(3);
  g.add_edge(0, 1, gbps(1));
  g.add_edge(1, 2, gbps(1));
  const double inf = std::numeric_limits<double>::infinity();
  const auto dj = dijkstra(g, 0, {1.0, inf});
  EXPECT_TRUE(std::isinf(dj.dist[2]));
  EXPECT_TRUE(extract_path(g, dj, 0, 2).empty());
}

TEST(Dijkstra, RejectsWrongLengthVector) {
  const Graph g = directed_ring(4, gbps(1));
  EXPECT_THROW((void)dijkstra(g, 0, {1.0}), psd::InvalidArgument);
}

TEST(Dijkstra, EarlyStopMatchesFullRunForDestination) {
  const Graph g = bidirectional_ring(10, gbps(1));
  std::vector<double> len(static_cast<std::size_t>(g.num_edges()));
  for (std::size_t e = 0; e < len.size(); ++e) {
    len[e] = 1.0 + 0.1 * static_cast<double>(e % 7);  // break symmetry
  }
  for (NodeId dst = 0; dst < 10; ++dst) {
    const auto full = dijkstra(g, 3, len);
    const auto stopped = dijkstra(g, 3, len, dst);
    EXPECT_DOUBLE_EQ(stopped.dist[static_cast<std::size_t>(dst)],
                     full.dist[static_cast<std::size_t>(dst)]);
    // The parent chain to dst is final: identical extracted path.
    const auto pf = extract_path(g, full, 3, dst);
    const auto ps = extract_path(g, stopped, 3, dst);
    EXPECT_EQ(pf, ps) << "dst=" << dst;
  }
}

TEST(Dijkstra, EarlyStopUnreachableDestination) {
  Graph g(3);
  g.add_edge(0, 1, gbps(1));
  const std::vector<double> len(1, 1.0);
  const auto res = dijkstra(g, 0, len, 2);
  EXPECT_TRUE(std::isinf(res.dist[2]));
  EXPECT_TRUE(extract_path(g, res, 0, 2).empty());
}

TEST(ExtractPath, SourceEqualsDestination) {
  const Graph g = directed_ring(4, gbps(1));
  const std::vector<double> unit(4, 1.0);
  const auto dj = dijkstra(g, 1, unit);
  EXPECT_TRUE(extract_path(g, dj, 1, 1).empty());
}

}  // namespace
}  // namespace psd::topo
