// Tentpole coverage for topology churn: Graph mutator invariants (epoch,
// incremental fingerprint, swap-and-pop renumbering), apply_delta semantics,
// the GK delta-warm-restart θ pin, edge-level θ-cache invalidation (private
// oracle and shared cache), and the seeded stream derivation the fault
// sampler builds on.
#include "psd/topo/delta.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "psd/flow/commodity.hpp"
#include "psd/flow/garg_konemann.hpp"
#include "psd/flow/theta.hpp"
#include "psd/sweep/shared_theta_cache.hpp"
#include "psd/topo/builders.hpp"
#include "psd/topo/graph.hpp"
#include "psd/topo/matching.hpp"
#include "psd/util/rng.hpp"

namespace psd {
namespace {

using topo::edge_pair_code;
using topo::Graph;

// --- Graph mutator invariants ------------------------------------------

TEST(GraphMutators, SetCapacityBumpsEpochAndRestoresFingerprint) {
  Graph g = topo::directed_ring(8, gbps(800));
  const auto fp0 = g.fingerprint();
  const auto epoch0 = g.epoch();
  const topo::EdgeId e = g.find_edge(2, 3);
  g.set_capacity(e, gbps(400));
  EXPECT_EQ(g.epoch(), epoch0 + 1);
  EXPECT_NE(g.fingerprint(), fp0);
  g.set_capacity(e, gbps(800));
  EXPECT_EQ(g.epoch(), epoch0 + 2);  // epoch is a mutation count, not state
  EXPECT_EQ(g.fingerprint(), fp0);   // but the multiset is back
}

// Regression for the summed-hash weakness: per-edge hashes must avalanche
// before summing, else a single shared capacity-bit flip cancels across the
// sum (directed_ring(8, 800) and (8, 400) used to collide).
TEST(GraphMutators, FingerprintDistinguishesUniformCapacityChange) {
  const Graph a = topo::directed_ring(8, gbps(800));
  const Graph b = topo::directed_ring(8, gbps(400));
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(GraphMutators, FingerprintIgnoresInsertionOrder) {
  Graph a(4);
  a.add_edge(0, 1, gbps(800));
  a.add_edge(1, 2, gbps(400));
  a.add_edge(2, 3, gbps(200));
  Graph b(4);
  b.add_edge(2, 3, gbps(200));
  b.add_edge(0, 1, gbps(800));
  b.add_edge(1, 2, gbps(400));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(GraphMutators, FingerprintSeesDuplicateParallelEdges) {
  Graph once(2);
  once.add_edge(0, 1, gbps(800));
  Graph twice(2);
  twice.add_edge(0, 1, gbps(800));
  twice.add_edge(0, 1, gbps(800));
  // An XOR fold would cancel the duplicate; the sum must not.
  EXPECT_NE(once.fingerprint(), twice.fingerprint());
}

TEST(GraphMutators, RemoveEdgeSwapAndPopRenumbers) {
  Graph g(4);
  const topo::EdgeId e0 = g.add_edge(0, 1, gbps(800));
  g.add_edge(1, 2, gbps(800));
  const topo::EdgeId last = g.add_edge(2, 3, gbps(800));
  const topo::EdgeId moved = g.remove_edge(e0);
  EXPECT_EQ(moved, last);  // the old last edge took over slot e0
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.edge(e0).src, 2);
  EXPECT_EQ(g.edge(e0).dst, 3);
  EXPECT_EQ(g.find_edge(0, 1), -1);
  EXPECT_EQ(g.find_edge(2, 3), e0);
  // Adjacency lists track the renumbering.
  EXPECT_EQ(g.out_edges(2).front(), e0);
  EXPECT_EQ(g.in_edges(3).front(), e0);
  // Removing the (new) last edge moves nothing.
  EXPECT_EQ(g.remove_edge(g.num_edges() - 1), -1);
}

TEST(GraphMutators, RemoveThenReAddRestoresFingerprint) {
  Graph g = topo::bidirectional_ring(6, gbps(800));
  const auto fp0 = g.fingerprint();
  const topo::EdgeId e = g.find_edge(1, 2);
  g.remove_edge(e);
  EXPECT_NE(g.fingerprint(), fp0);
  g.add_edge(1, 2, gbps(800));
  EXPECT_EQ(g.fingerprint(), fp0);  // multiset identity ignores edge ids
}

// --- Incremental fingerprint == recomputed, randomized -----------------

// Rebuilds g's edge multiset into a fresh graph; equal multisets must give
// equal fingerprints no matter how many mutations produced them.
std::uint64_t recomputed_fingerprint(const Graph& g) {
  Graph fresh(g.num_nodes());
  for (const auto& e : g.edges()) fresh.add_edge(e.src, e.dst, e.capacity);
  return fresh.fingerprint();
}

TEST(GraphMutators, IncrementalFingerprintMatchesRecomputedOverRandomDeltas) {
  Rng rng(0xFEEDu);
  Graph g = topo::torus_2d(4, 4, gbps(800));
  for (int step = 0; step < 400; ++step) {
    const auto epoch0 = g.epoch();
    const int op = static_cast<int>(rng.next_below(4));
    if (op == 0 && g.num_edges() > 8) {
      g.remove_edge(static_cast<topo::EdgeId>(rng.next_below(
          static_cast<std::uint64_t>(g.num_edges()))));
    } else if (op == 1) {
      const auto a = static_cast<topo::NodeId>(
          rng.next_below(static_cast<std::uint64_t>(g.num_nodes())));
      const auto b = static_cast<topo::NodeId>(
          rng.next_below(static_cast<std::uint64_t>(g.num_nodes())));
      if (a == b) continue;
      g.add_edge(a, b, gbps(100 + 100 * static_cast<double>(rng.next_below(8))));
    } else {
      const auto e = static_cast<topo::EdgeId>(
          rng.next_below(static_cast<std::uint64_t>(g.num_edges())));
      g.set_capacity(e, gbps(50 + 50 * static_cast<double>(rng.next_below(16))));
    }
    EXPECT_GT(g.epoch(), epoch0);
    ASSERT_EQ(g.fingerprint(), recomputed_fingerprint(g)) << "step " << step;
  }
}

// --- apply_delta semantics ---------------------------------------------

TEST(ApplyDelta, TouchedSetIsSortedUniqueAndCountsAreRight) {
  Graph g = topo::bidirectional_ring(6, gbps(800));
  const auto res = topo::apply_delta(g, topo::TopologyDelta{}
                                            .scale_capacity(0, 1, 0.5)
                                            .scale_capacity(0, 1, 0.5)
                                            .remove_edge(3, 4)
                                            .set_capacity(4, 3, gbps(100)));
  EXPECT_EQ(res.epoch, g.epoch());
  EXPECT_FALSE(res.relaxing);
  EXPECT_EQ(res.edges_removed, 1);
  EXPECT_EQ(res.edges_added, 0);
  EXPECT_EQ(res.capacity_changes, 3);
  std::vector<std::uint64_t> want = {edge_pair_code(0, 1), edge_pair_code(3, 4),
                                     edge_pair_code(4, 3)};
  std::sort(want.begin(), want.end());
  EXPECT_EQ(res.touched, want);
}

TEST(ApplyDelta, RelaxingFlagTracksAnyThetaRaisingOp) {
  {  // pure restriction: cuts and droops
    Graph g = topo::bidirectional_ring(6, gbps(800));
    EXPECT_FALSE(topo::apply_delta(g, topo::TopologyDelta{}
                                          .remove_edge(0, 1)
                                          .scale_capacity(1, 2, 0.25)
                                          .set_capacity(2, 3, gbps(400)))
                     .relaxing);
  }
  {  // a new edge relaxes
    Graph g = topo::bidirectional_ring(6, gbps(800));
    EXPECT_TRUE(
        topo::apply_delta(g, topo::TopologyDelta{}.add_edge(0, 3, gbps(100)))
            .relaxing);
  }
  {  // raising a capacity relaxes, even alongside restrictions
    Graph g = topo::bidirectional_ring(6, gbps(800));
    EXPECT_TRUE(topo::apply_delta(g, topo::TopologyDelta{}
                                         .remove_edge(0, 1)
                                         .scale_capacity(1, 2, 2.0))
                    .relaxing);
  }
  {  // set_capacity to the same value neither restricts nor relaxes θ
    Graph g = topo::bidirectional_ring(6, gbps(800));
    EXPECT_FALSE(
        topo::apply_delta(g, topo::TopologyDelta{}.set_capacity(0, 1, gbps(800)))
            .relaxing);
  }
}

TEST(ApplyDelta, RejectsMissingEdgesDuplicatesAndBadFactors) {
  Graph g = topo::directed_ring(4, gbps(800));
  EXPECT_THROW(
      (void)topo::apply_delta(g, topo::TopologyDelta{}.remove_edge(0, 2)),
      InvalidArgument);
  EXPECT_THROW((void)topo::apply_delta(
                   g, topo::TopologyDelta{}.add_edge(0, 1, gbps(100))),
               InvalidArgument);
  EXPECT_THROW((void)topo::apply_delta(
                   g, topo::TopologyDelta{}.scale_capacity(0, 1, 0.0)),
               InvalidArgument);
  // Failed deltas must not have half-applied: fingerprint intact.
  EXPECT_EQ(g.fingerprint(), topo::directed_ring(4, gbps(800)).fingerprint());
}

TEST(ApplyDelta, PairCodesIntersectIsExact) {
  const std::vector<std::uint64_t> a = {edge_pair_code(0, 1),
                                        edge_pair_code(2, 3)};
  const std::vector<std::uint64_t> b = {edge_pair_code(1, 0),
                                        edge_pair_code(3, 2)};
  const std::vector<std::uint64_t> c = {edge_pair_code(2, 3)};
  EXPECT_FALSE(topo::pair_codes_intersect(a, b));  // direction matters
  EXPECT_TRUE(topo::pair_codes_intersect(a, c));
  EXPECT_FALSE(topo::pair_codes_intersect({}, a));
}

// --- GK delta warm restart ---------------------------------------------

// A delta-restart seeded with the pre-delta paths must land within the same
// (1+ε) band as a cold solve of the post-delta graph, and must skip the
// seeded commodities' initial searches.
TEST(GkWarmRestart, DeltaRestartThetaWithinEpsilonOfCold) {
  const double eps = 0.1;
  Graph g = topo::torus_2d(4, 8, gbps(800));
  const auto m = topo::Matching::rotation(32, 11);
  const auto commodities = flow::commodities_from_matching(m);
  flow::GargKonemannOptions opts{.epsilon = eps};

  flow::GkWarmState warm;
  flow::GkRunStats cold_stats;
  (void)flow::gk_theta_only_ex(g, commodities, gbps(800), opts,
                               {.warm = &warm, .stats = &cold_stats});
  ASSERT_EQ(warm.node_paths.size(), commodities.size());

  // Droop one edge, then cut another: some carried paths break (cold
  // fallback), the rest seed.
  (void)topo::apply_delta(g, topo::TopologyDelta{}
                                 .scale_capacity(0, 1, 0.5)
                                 .remove_edge(8, 9));

  flow::GkRunStats warm_stats;
  const double theta_warm = flow::gk_theta_only_ex(
      g, commodities, gbps(800), opts, {.warm = &warm, .stats = &warm_stats});
  const double theta_cold =
      flow::gk_theta_only(g, commodities, gbps(800), opts);

  // Both are within [OPT/(1+ε), OPT], so their ratio is within (1+ε).
  EXPECT_LE(theta_warm, theta_cold * (1.0 + eps) + 1e-12);
  EXPECT_GE(theta_warm, theta_cold / (1.0 + eps) - 1e-12);
  // Seeding must save initial searches over the cold run.
  EXPECT_LT(warm_stats.sssp_searches, cold_stats.sssp_searches);
}

TEST(GkWarmRestart, ColdReferenceIgnoresSeededPaths) {
  const Graph g = topo::torus_2d(4, 4, gbps(800));
  const auto m = topo::Matching::rotation(16, 5);
  const auto commodities = flow::commodities_from_matching(m);
  flow::GargKonemannOptions cold{.epsilon = 0.1, .warm_start = false};

  const double reference = flow::gk_theta_only(g, commodities, gbps(800), cold);
  flow::GkWarmState warm;
  (void)flow::gk_theta_only_ex(g, commodities, gbps(800),
                               {.epsilon = 0.1}, {.warm = &warm});
  const double seeded = flow::gk_theta_only_ex(g, commodities, gbps(800), cold,
                                               {.warm = &warm});
  EXPECT_EQ(seeded, reference);  // bit-exact: warm_start=false is the anchor
}

// --- Oracle edge-level invalidation ------------------------------------

// Two isolated 4-node bidirectional rings: tenant matchings with provably
// disjoint routed supports (flow cannot leave a component), which is what
// lets a single-edge delta leave the other tenant's entry untouched.
Graph two_ring_union() {
  Graph g(8);
  for (int base = 0; base < 8; base += 4) {
    for (int i = 0; i < 4; ++i) {
      const int a = base + i;
      const int b = base + (i + 1) % 4;
      g.add_edge(a, b, gbps(800));
      g.add_edge(b, a, gbps(800));
    }
  }
  return g;
}

topo::Matching ring_rotation(int base, int shift) {
  std::vector<int> dst(8, -1);
  for (int i = 0; i < 4; ++i) dst[base + i] = base + (i + shift) % 4;
  return topo::Matching::from_destinations(std::move(dst));
}

TEST(OracleInvalidation, SingleEdgeDeltaInvalidatesOnlySupportTouchingEntries) {
  Graph g = two_ring_union();
  flow::ThetaOptions opts;
  opts.track_support = true;
  opts.exact_var_limit = 0;  // force GK so warm hints are exercised
  opts.epsilon = 0.05;
  const flow::ThetaOracle oracle(g, gbps(800), opts);
  const auto m0 = ring_rotation(0, 1);  // support ⊆ ring 0
  const auto m1 = ring_rotation(4, 1);  // support ⊆ ring 1
  const double t0 = oracle.theta(m0);
  const double t1 = oracle.theta(m1);
  ASSERT_EQ(oracle.cache_size(), 2u);

  flow::ThetaOracle& mut = const_cast<flow::ThetaOracle&>(oracle);
  const auto dres =
      topo::apply_delta(g, topo::TopologyDelta{}.scale_capacity(0, 1, 0.5));
  const auto inv = mut.apply_topology_delta(dres);
  EXPECT_EQ(inv.examined, 2u);
  EXPECT_EQ(inv.survived, 1u);     // ring 1's entry: support avoids (0,1)
  EXPECT_EQ(inv.invalidated, 1u);  // ring 0's entry: support touches it
  EXPECT_EQ(inv.warm_hints, 1u);   // its GK paths became a warm hint

  // Ring 1's θ is a pure cache hit; ring 0's re-solves (warm-seeded).
  const auto hits_before = oracle.cache_hits();
  const auto solves_before = oracle.solve_stats().solves;
  EXPECT_EQ(oracle.theta(m1), t1);
  EXPECT_EQ(oracle.cache_hits(), hits_before + 1);
  EXPECT_EQ(oracle.solve_stats().solves, solves_before);
  const double t0_after = oracle.theta(m0);
  EXPECT_EQ(oracle.solve_stats().solves, solves_before + 1);
  EXPECT_LE(t0_after, t0 + 1e-12);  // restricting delta cannot raise θ
}

TEST(OracleInvalidation, RelaxingDeltaInvalidatesEverything) {
  Graph g = two_ring_union();
  flow::ThetaOptions opts;
  opts.track_support = true;
  const flow::ThetaOracle oracle(g, gbps(800), opts);
  (void)oracle.theta(ring_rotation(0, 1));
  (void)oracle.theta(ring_rotation(4, 1));
  const auto dres =
      topo::apply_delta(g, topo::TopologyDelta{}.scale_capacity(0, 1, 2.0));
  const auto inv =
      const_cast<flow::ThetaOracle&>(oracle).apply_topology_delta(dres);
  EXPECT_EQ(inv.examined, 2u);
  EXPECT_EQ(inv.survived, 0u);
  EXPECT_EQ(inv.invalidated, 2u);
  EXPECT_EQ(oracle.cache_size(), 0u);
}

TEST(OracleInvalidation, WithoutSupportTrackingNothingSurvives) {
  Graph g = two_ring_union();
  const flow::ThetaOracle oracle(g, gbps(800));  // track_support off
  (void)oracle.theta(ring_rotation(4, 1));
  const auto dres =
      topo::apply_delta(g, topo::TopologyDelta{}.scale_capacity(0, 1, 0.5));
  const auto inv =
      const_cast<flow::ThetaOracle&>(oracle).apply_topology_delta(dres);
  EXPECT_EQ(inv.survived, 0u);  // no recorded support ⇒ conservative erase
  EXPECT_EQ(inv.invalidated, 1u);
}

// --- Shared-cache carry ------------------------------------------------

TEST(SharedCacheCarry, CarriesExactlySupportAvoidingEntries) {
  sweep::SharedThetaCache cache;
  const std::uint64_t fp_old = 0xAAA, fp_new = 0xBBB;
  const std::vector<int> d0 = {1, 0, 3, 2};
  const std::vector<int> d1 = {3, 2, 1, 0};
  const std::vector<int> d2 = {2, 3, 0, 1};
  std::vector<std::uint64_t> s0 = {edge_pair_code(0, 1), edge_pair_code(1, 0)};
  std::vector<std::uint64_t> s1 = {edge_pair_code(2, 3), edge_pair_code(3, 2)};
  std::sort(s0.begin(), s0.end());
  std::sort(s1.begin(), s1.end());
  (void)cache.insert_with_support(fp_old, d0, 0.25, s0);
  (void)cache.insert_with_support(fp_old, d1, 0.5, s1);
  (void)cache.insert(fp_old, d2, 0.75);  // no support recorded

  const std::vector<std::uint64_t> touched = {edge_pair_code(0, 1)};
  const auto stats = cache.carry_across_delta(fp_old, fp_new, touched, false);
  EXPECT_EQ(stats.examined, 3u);
  EXPECT_EQ(stats.survived, 1u);  // only d1: support avoids (0,1)
  EXPECT_EQ(stats.invalidated, 2u);

  EXPECT_EQ(cache.lookup(fp_new, d1), std::optional<double>(0.5));
  EXPECT_EQ(cache.lookup(fp_new, d0), std::nullopt);
  EXPECT_EQ(cache.lookup(fp_new, d2), std::nullopt);
  // Copy, not move: old-context entries remain for sibling oracles.
  EXPECT_EQ(cache.lookup(fp_old, d0), std::optional<double>(0.25));
  EXPECT_EQ(cache.lookup(fp_old, d1), std::optional<double>(0.5));

  // A relaxing delta carries nothing, even with clean supports.
  const auto relaxed = cache.carry_across_delta(fp_new, 0xCCC, touched, true);
  EXPECT_EQ(relaxed.survived, 0u);
  EXPECT_EQ(cache.lookup(0xCCC, d1), std::nullopt);
}

// Randomized exactness: survivors are precisely the support-avoiding
// entries, for hundreds of random (support, touched) draws.
TEST(SharedCacheCarry, RandomizedSurvivorSetIsExact) {
  Rng rng(0xC0FFEEu);
  for (int round = 0; round < 50; ++round) {
    sweep::SharedThetaCache cache;
    const std::uint64_t fp_old = 0x1000u + static_cast<std::uint64_t>(round);
    const std::uint64_t fp_new = 0x2000u + static_cast<std::uint64_t>(round);
    const int entries = 8;
    std::vector<std::vector<int>> dsts;
    std::vector<std::vector<std::uint64_t>> supports;
    for (int i = 0; i < entries; ++i) {
      // Distinct destination vectors via the entry index.
      dsts.push_back({i + 1, -1, -1, -1, -1, -1, -1, -1, 0});
      std::vector<std::uint64_t> sup;
      const int edges = 1 + static_cast<int>(rng.next_below(4));
      for (int j = 0; j < edges; ++j) {
        const auto a = static_cast<int>(rng.next_below(6));
        const auto b = static_cast<int>(rng.next_below(6));
        if (a != b) sup.push_back(edge_pair_code(a, b));
      }
      std::sort(sup.begin(), sup.end());
      sup.erase(std::unique(sup.begin(), sup.end()), sup.end());
      supports.push_back(sup);
      (void)cache.insert_with_support(fp_old, dsts.back(), 0.1 * (i + 1),
                                      supports.back());
    }
    std::vector<std::uint64_t> touched;
    for (int j = 0; j < 3; ++j) {
      const auto a = static_cast<int>(rng.next_below(6));
      const auto b = static_cast<int>(rng.next_below(6));
      if (a != b) touched.push_back(edge_pair_code(a, b));
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

    const auto stats = cache.carry_across_delta(fp_old, fp_new, touched, false);
    std::size_t want_survivors = 0;
    for (int i = 0; i < entries; ++i) {
      // A *recorded* empty support routes no flow, so it survives any
      // restricting delta (only nullptr — support never recorded — is
      // conservatively invalidated).
      const bool expect_alive = !topo::pair_codes_intersect(
          supports[static_cast<std::size_t>(i)], touched);
      want_survivors += expect_alive ? 1u : 0u;
      const auto got = cache.lookup(fp_new, dsts[static_cast<std::size_t>(i)]);
      ASSERT_EQ(got.has_value(), expect_alive)
          << "round " << round << " entry " << i;
    }
    EXPECT_EQ(stats.survived, want_survivors);
    EXPECT_EQ(stats.examined, static_cast<std::size_t>(entries));
  }
}

// --- Seeded stream derivation ------------------------------------------

TEST(StreamSeeds, DeterministicAndIndependentPerKey) {
  const auto s = derive_stream_seed(7, "scenario-a", 0);
  EXPECT_EQ(derive_stream_seed(7, "scenario-a", 0), s);
  EXPECT_NE(derive_stream_seed(7, "scenario-a", 1), s);
  EXPECT_NE(derive_stream_seed(7, "scenario-b", 0), s);
  EXPECT_NE(derive_stream_seed(8, "scenario-a", 0), s);
  // Streams must decorrelate even for adjacent indices: identical first
  // draws would mean every fault picks the same victim.
  Rng a(derive_stream_seed(7, "scenario-a", 0));
  Rng b(derive_stream_seed(7, "scenario-a", 1));
  EXPECT_NE(a.next_below(1u << 30), b.next_below(1u << 30));
}

}  // namespace
}  // namespace psd
