// PlanService priority lanes, per-tenant DRR fairness, and delta-storm
// debouncing.
//
// Lanes: a deadline-carrying request queued behind K batch requests must
// be dequeued first (two-lane queue, not expiry-time reordering), and a
// deadline waiter coalescing onto a queued batch job promotes it.
// Fairness: within a lane, tenants are dequeued weighted-DRR — a second
// tenant's single job overtakes a chatty tenant's backlog.
// Debounce: a burst of deltas inside the configured window fires exactly
// one replan wave, counting every coalesced delta in replans_debounced;
// with debounce_trailing, each rider extends the window so the wave fires
// one quiet window after the *last* delta.
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "psd/serve/service.hpp"
#include "psd/util/json.hpp"

namespace psd::serve {
namespace {

using namespace std::chrono_literals;

/// Thread-safe sink recording responses by id *and* global arrival order.
class OrderedCapture {
 public:
  void operator()(const std::string& line) {
    auto v = parse_json(line);
    const auto* id = v.find("id");
    const std::string key = id != nullptr ? id->as_string() : "";
    const std::lock_guard<std::mutex> lk(mu_);
    order_.push_back(key);
    by_id_[key] = std::move(v);
    cv_.notify_all();
  }

  JsonValue wait(const std::string& id,
                 std::chrono::milliseconds timeout = 60'000ms) {
    std::unique_lock<std::mutex> lk(mu_);
    if (!cv_.wait_for(lk, timeout, [&] { return by_id_.count(id) != 0; })) {
      ADD_FAILURE() << "no response for " << id;
      return JsonValue{};
    }
    return by_id_[id];
  }

  /// Index of `id` in arrival order (must have arrived).
  std::size_t rank(const std::string& id) {
    const std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t i = 0; i < order_.size(); ++i) {
      if (order_[i] == id) return i;
    }
    ADD_FAILURE() << id << " never arrived";
    return order_.size();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::string> order_;
  std::map<std::string, JsonValue> by_id_;
};

std::string cheap_plan(const std::string& id, int salt = 0,
                       const std::string& extra = "") {
  return R"({"op":"plan","id":")" + id +
         R"(","topology":"ring","nodes":8,"collective":"allreduce:ring",)" +
         R"("message_bytes":)" + std::to_string(1048576 + salt) + extra + "}";
}

std::string heavy_plan(const std::string& id, int salt = 0,
                       const std::string& extra = "") {
  return R"({"op":"plan","id":")" + id +
         R"(","topology":"mesh","nodes":12,"collective":"alltoall",)" +
         R"("message_bytes":)" + std::to_string(4194304 + salt) + extra + "}";
}

std::string ring_delta(const std::string& id, int src, int dst) {
  return R"({"op":"delta","id":")" + id +
         R"(","topology":"ring","nodes":8,"ops":[{"kind":"scale_capacity",)" +
         R"("src":)" + std::to_string(src) + R"(,"dst":)" +
         std::to_string(dst) + R"(,"factor":0.5}]})";
}

std::int64_t stat_of(PlanService& svc, const char* name) {
  OrderedCapture cap;
  svc.submit_line(R"({"op":"stats","id":"__st"})",
                  std::make_shared<const PlanService::Emit>(std::ref(cap)));
  const auto v = cap.wait("__st");
  const auto* st = v.find("stats");
  if (st == nullptr) return -1;
  const auto* f = st->find(name);
  return f != nullptr ? static_cast<std::int64_t>(f->as_number()) : -1;
}

// ---- Priority lanes ------------------------------------------------------

TEST(ServeLanes, DeadlineRequestOvertakesQueuedBatch) {
  OrderedCapture cap;
  ServiceOptions opts;
  opts.workers = 1;  // one worker: queue order is answer order
  PlanService svc(opts, std::ref(cap));

  // Pin the worker with a heavy blocker so everything below queues.
  svc.submit_line(heavy_plan("blocker"));
  std::this_thread::sleep_for(100ms);  // let the worker pick it up

  // K batch requests (distinct solve keys, no deadline), then one
  // deadline-carrying request. FIFO would answer it last; the urgent lane
  // must answer it first.
  constexpr int kBatch = 4;
  for (int i = 0; i < kBatch; ++i) {
    svc.submit_line(cheap_plan("batch" + std::to_string(i), i + 1));
  }
  svc.submit_line(cheap_plan("urgent", 777, R"(,"deadline_ms":30000)"));

  (void)cap.wait("blocker", 120'000ms);
  for (int i = 0; i < kBatch; ++i) {
    const auto r = cap.wait("batch" + std::to_string(i), 120'000ms);
    EXPECT_EQ(r.find("code")->as_string(), "OK");
  }
  const auto u = cap.wait("urgent", 120'000ms);
  ASSERT_EQ(u.find("code")->as_string(), "OK");
  EXPECT_FALSE(u.find("degraded")->as_bool());  // solved, not laddered

  // Pinned ordering: the urgent response precedes every batch response.
  const std::size_t urgent_rank = cap.rank("urgent");
  for (int i = 0; i < kBatch; ++i) {
    EXPECT_LT(urgent_rank, cap.rank("batch" + std::to_string(i)))
        << "urgent answered after batch" << i;
  }
}

TEST(ServeLanes, DeadlineWaiterPromotesCoalescedBatchJob) {
  OrderedCapture cap;
  ServiceOptions opts;
  opts.workers = 1;
  PlanService svc(opts, std::ref(cap));

  svc.submit_line(heavy_plan("blocker"));
  std::this_thread::sleep_for(100ms);

  // Two batch jobs queue; then a deadline request coalesces onto the
  // *second* one. The promotion must pull that whole job (both waiters)
  // ahead of the first batch job.
  svc.submit_line(cheap_plan("b0", 1));
  svc.submit_line(cheap_plan("b1", 2));
  svc.submit_line(cheap_plan("rider", 2, R"(,"deadline_ms":30000)"));

  const auto rider = cap.wait("rider", 120'000ms);
  ASSERT_EQ(rider.find("code")->as_string(), "OK");
  EXPECT_TRUE(rider.find("coalesced")->as_bool());
  (void)cap.wait("b0", 120'000ms);
  (void)cap.wait("b1", 120'000ms);
  EXPECT_LT(cap.rank("b1"), cap.rank("b0"))
      << "promoted job should be solved before the older batch job";
  EXPECT_LT(cap.rank("rider"), cap.rank("b0"));
  svc.drain();
}

// ---- Per-tenant DRR fairness ---------------------------------------------

TEST(ServeFairness, QuietTenantOvertakesChattyBacklog) {
  OrderedCapture cap;
  ServiceOptions opts;
  opts.workers = 1;  // one worker: dequeue order is answer order
  PlanService svc(opts, std::ref(cap));

  svc.submit_line(heavy_plan("blocker"));
  std::this_thread::sleep_for(100ms);  // let the worker pick it up

  // Chatty tenant queues 4 jobs, then a quiet tenant queues one. A FIFO
  // answers quiet last; DRR alternates tenants, so quiet is answered
  // right after chatty's first job.
  for (int i = 0; i < 4; ++i) {
    svc.submit_line(cheap_plan("chatty" + std::to_string(i), i + 1), nullptr,
                    "chatty");
  }
  svc.submit_line(cheap_plan("quiet", 99), nullptr, "quiet");

  (void)cap.wait("blocker", 120'000ms);
  (void)cap.wait("quiet", 120'000ms);
  for (int i = 0; i < 4; ++i) {
    (void)cap.wait("chatty" + std::to_string(i), 120'000ms);
  }
  EXPECT_LT(cap.rank("quiet"), cap.rank("chatty1"))
      << "DRR must interleave the quiet tenant into the chatty backlog";
}

TEST(ServeFairness, RequestTenantFieldOverridesTransportTenant) {
  OrderedCapture cap;
  ServiceOptions opts;
  opts.workers = 1;
  PlanService svc(opts, std::ref(cap));

  svc.submit_line(heavy_plan("blocker"));
  std::this_thread::sleep_for(100ms);

  // All lines arrive on the "conn" transport identity, but the last one
  // claims its own tenant in the request — it must be queued under that
  // tenant and dequeue ahead of conn's backlog.
  for (int i = 0; i < 3; ++i) {
    svc.submit_line(cheap_plan("conn" + std::to_string(i), i + 1), nullptr,
                    "conn");
  }
  svc.submit_line(cheap_plan("own", 77, R"(,"tenant":"self")"), nullptr,
                  "conn");

  (void)cap.wait("blocker", 120'000ms);
  (void)cap.wait("own", 120'000ms);
  for (int i = 0; i < 3; ++i) {
    (void)cap.wait("conn" + std::to_string(i), 120'000ms);
  }
  EXPECT_LT(cap.rank("own"), cap.rank("conn1"));
}

TEST(ServeFairness, WeightsGrantProportionalDequeues) {
  OrderedCapture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.tenant_weights["vip"] = 2;  // two dequeues per DRR visit
  PlanService svc(opts, std::ref(cap));

  svc.submit_line(heavy_plan("blocker"));
  std::this_thread::sleep_for(100ms);

  for (int i = 0; i < 3; ++i) {
    svc.submit_line(cheap_plan("vip" + std::to_string(i), i + 1), nullptr,
                    "vip");
  }
  for (int i = 0; i < 3; ++i) {
    svc.submit_line(cheap_plan("std" + std::to_string(i), i + 10), nullptr,
                    "std");
  }

  (void)cap.wait("blocker", 120'000ms);
  for (int i = 0; i < 3; ++i) {
    (void)cap.wait("vip" + std::to_string(i), 120'000ms);
    (void)cap.wait("std" + std::to_string(i), 120'000ms);
  }
  // Weight 2 lets vip take two jobs before std's first visit ends.
  EXPECT_LT(cap.rank("vip1"), cap.rank("std1"));
}

// ---- Debounce ------------------------------------------------------------

TEST(ServeDebounce, BurstOfDeltasFiresOneReplanWave) {
  OrderedCapture cap;
  ServiceOptions opts;
  opts.workers = 2;
  opts.watchdog_interval = 5ms;
  opts.replan_debounce_window = 150ms;
  PlanService svc(opts, std::ref(cap));

  // Seed the memo so a replan wave has something to refresh.
  svc.submit_line(cheap_plan("seed"));
  ASSERT_EQ(cap.wait("seed").find("code")->as_string(), "OK");
  svc.drain();

  // Ten rapid deltas on one context, all inside the 150 ms window: the
  // first arms it, nine ride it.
  constexpr int kBurst = 10;
  for (int i = 0; i < kBurst; ++i) {
    svc.submit_line(ring_delta("d" + std::to_string(i), i % 7, (i % 7) + 1));
  }
  for (int i = 0; i < kBurst; ++i) {
    const auto d = cap.wait("d" + std::to_string(i));
    ASSERT_EQ(d.find("code")->as_string(), "OK");
    // No synchronous replans in debounce mode — the wave is deferred.
    EXPECT_EQ(d.find("replans_enqueued")->as_number(), 0.0);
    EXPECT_TRUE(d.find("replans_deferred")->as_bool());
  }

  // Let the window close and the wave run dry.
  std::this_thread::sleep_for(300ms);
  svc.drain();

  EXPECT_EQ(stat_of(svc, "replans_debounced"), kBurst - 1);
  EXPECT_EQ(stat_of(svc, "replans"), 1) << "exactly one replan wave";

  // And the wave actually refreshed the memo: a repeat of the seed is a
  // fresh (non-degraded) cache hit at the post-burst epoch.
  svc.submit_line(cheap_plan("after"));
  const auto after = cap.wait("after");
  ASSERT_EQ(after.find("code")->as_string(), "OK");
  EXPECT_TRUE(after.find("cached")->as_bool());
  EXPECT_FALSE(after.find("degraded")->as_bool());
  EXPECT_EQ(after.find("epoch")->as_number(), static_cast<double>(kBurst));
}

TEST(ServeDebounce, TrailingEdgeExtendsTheWindowAcrossADrizzle) {
  // Three deltas 250 ms apart under a 400 ms window. Leading-edge closes
  // the window 400 ms after the *first* delta — before the third arrives —
  // and fires two waves. Trailing-edge extends the window per rider, so
  // the whole drizzle is one wave, fired after the last delta.
  OrderedCapture cap;
  ServiceOptions opts;
  opts.workers = 2;
  opts.watchdog_interval = 5ms;
  opts.replan_debounce_window = 400ms;
  opts.debounce_trailing = true;
  PlanService svc(opts, std::ref(cap));

  svc.submit_line(cheap_plan("seed"));
  ASSERT_EQ(cap.wait("seed").find("code")->as_string(), "OK");
  svc.drain();

  for (int i = 0; i < 3; ++i) {
    if (i > 0) std::this_thread::sleep_for(250ms);
    svc.submit_line(ring_delta("d" + std::to_string(i), i, i + 1));
    const auto d = cap.wait("d" + std::to_string(i));
    ASSERT_EQ(d.find("code")->as_string(), "OK");
    EXPECT_TRUE(d.find("replans_deferred")->as_bool());
  }

  // Let the extended window close and the wave run dry.
  std::this_thread::sleep_for(700ms);
  svc.drain();
  EXPECT_EQ(stat_of(svc, "replans"), 1)
      << "trailing debounce must merge the drizzle into one wave";
  EXPECT_EQ(stat_of(svc, "replans_debounced"), 2);

  svc.submit_line(cheap_plan("after"));
  const auto after = cap.wait("after");
  EXPECT_TRUE(after.find("cached")->as_bool());
  EXPECT_FALSE(after.find("degraded")->as_bool());
  EXPECT_EQ(after.find("epoch")->as_number(), 3.0);
}

TEST(ServeDebounce, SeparateBurstsFireSeparateWaves) {
  OrderedCapture cap;
  ServiceOptions opts;
  opts.workers = 2;
  opts.watchdog_interval = 5ms;
  opts.replan_debounce_window = 80ms;
  PlanService svc(opts, std::ref(cap));

  svc.submit_line(cheap_plan("seed"));
  (void)cap.wait("seed");
  svc.drain();

  for (int burst = 0; burst < 2; ++burst) {
    for (int i = 0; i < 3; ++i) {
      const std::string id = "b" + std::to_string(burst) + "d" +
                             std::to_string(i);
      svc.submit_line(ring_delta(id, i, i + 1));
      (void)cap.wait(id);
    }
    std::this_thread::sleep_for(200ms);  // window closes, wave runs
    svc.drain();
  }
  EXPECT_EQ(stat_of(svc, "replans"), 2) << "one wave per burst";
  EXPECT_EQ(stat_of(svc, "replans_debounced"), 4);  // 2 riders per burst
}

TEST(ServeDebounce, ZeroWindowReplansImmediately) {
  // Backwards-compat: the default window (0) keeps the synchronous
  // replans_enqueued semantics.
  OrderedCapture cap;
  ServiceOptions opts;
  opts.workers = 1;
  PlanService svc(opts, std::ref(cap));

  svc.submit_line(cheap_plan("seed"));
  (void)cap.wait("seed");
  svc.drain();

  svc.submit_line(ring_delta("d", 1, 2));
  const auto d = cap.wait("d");
  ASSERT_EQ(d.find("code")->as_string(), "OK");
  EXPECT_EQ(d.find("replans_enqueued")->as_number(), 1.0);
  EXPECT_FALSE(d.find("replans_deferred")->as_bool());
  svc.drain();
  EXPECT_EQ(stat_of(svc, "replans_debounced"), 0);
}

}  // namespace
}  // namespace psd::serve
