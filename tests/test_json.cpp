#include "psd/util/json.hpp"

#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace psd {
namespace {

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(1);
  w.key("b").value("x");
  w.key("c").value(true);
  w.key("d").null();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"x","c":true,"d":null})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("arr").begin_array();
  w.value(1).value(2.5);
  w.begin_object();
  w.key("k").value("v");
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"arr":[1,2.5,{"k":"v"}]})");
}

TEST(JsonWriter, TopLevelArray) {
  JsonWriter w;
  w.begin_array();
  w.value("a").value("b");
  w.end_array();
  EXPECT_EQ(w.str(), R"(["a","b"])");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("o").begin_object();
  w.end_object();
  w.key("a").begin_array();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"o":{},"a":[]})");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_object();
  w.key("quote\"key").value("line\nbreak\ttab\\slash");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"quote\\\"key\":\"line\\nbreak\\ttab\\\\slash\"}");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriter, DoubleRoundTripPrecision) {
  JsonWriter w;
  w.begin_array();
  w.value(0.1);
  w.end_array();
  const std::string s = w.str();
  EXPECT_EQ(std::stod(s.substr(1, s.size() - 2)), 0.1);
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW((void)w.str(), InvalidArgument);  // unclosed
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), InvalidArgument);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), InvalidArgument);  // key inside array
  }
  {
    JsonWriter w;
    EXPECT_THROW(w.end_object(), InvalidArgument);  // nothing open
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.end_object(), InvalidArgument);  // mismatched close
  }
  {
    JsonWriter w;
    w.value(1);
    EXPECT_THROW(w.value(2), InvalidArgument);  // two top-level values
  }
}

TEST(ParseJson, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-0.5").as_number(), -0.5);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse_json("  \"ws\"  ").as_string(), "ws");
}

TEST(ParseJson, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d")").as_string(), "a\"b\\c/d");
  EXPECT_EQ(parse_json(R"("\n\t\r\b\f")").as_string(), "\n\t\r\b\f");
  EXPECT_EQ(parse_json(R"("A/")").as_string(), "A/");
}

TEST(ParseJson, NestedContainers) {
  const auto v = parse_json(R"({"a": [1, 2, {"b": true}], "c": null})");
  ASSERT_TRUE(v.is_object());
  const auto* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[0].as_number(), 1.0);
  EXPECT_EQ(a->as_array()[2].find("b")->as_bool(), true);
  EXPECT_TRUE(v.find("c")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ParseJson, EmptyContainers) {
  EXPECT_TRUE(parse_json("{}").as_object().empty());
  EXPECT_TRUE(parse_json("[]").as_array().empty());
}

TEST(ParseJson, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("x \"y\"\n");
  w.key("pi").value(0.1 + 0.2);
  w.key("list").begin_array().value(1).value(false).null().end_array();
  w.end_object();
  const auto v = parse_json(w.str());
  EXPECT_EQ(v.find("name")->as_string(), "x \"y\"\n");
  EXPECT_DOUBLE_EQ(v.find("pi")->as_number(), 0.1 + 0.2);
  ASSERT_EQ(v.find("list")->as_array().size(), 3u);
  EXPECT_TRUE(v.find("list")->as_array()[2].is_null());
}

TEST(ParseJson, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_json(""), JsonParseError);
  EXPECT_THROW((void)parse_json("{"), JsonParseError);
  EXPECT_THROW((void)parse_json("[1,]"), JsonParseError);
  EXPECT_THROW((void)parse_json("{\"a\" 1}"), JsonParseError);
  EXPECT_THROW((void)parse_json("{\"a\": 1,}"), JsonParseError);
  EXPECT_THROW((void)parse_json("\"unterminated"), JsonParseError);
  EXPECT_THROW((void)parse_json("nul"), JsonParseError);
  EXPECT_THROW((void)parse_json("01"), JsonParseError);
  EXPECT_THROW((void)parse_json("1 2"), JsonParseError);  // trailing garbage
  EXPECT_THROW((void)parse_json("{} x"), JsonParseError);
}

TEST(ParseJson, ErrorsCarryByteOffset) {
  try {
    (void)parse_json("{\"a\": !}");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_NE(std::string(e.what()).find("6"), std::string::npos)
        << "offset of '!' missing from: " << e.what();
  }
}

TEST(ParseJson, TypeMismatchThrows) {
  const auto v = parse_json("{\"n\": 1}");
  EXPECT_THROW((void)v.as_array(), JsonParseError);
  EXPECT_THROW((void)v.find("n")->as_string(), JsonParseError);
  EXPECT_THROW((void)parse_json("true").as_number(), JsonParseError);
}

}  // namespace
}  // namespace psd
