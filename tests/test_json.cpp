#include "psd/util/json.hpp"

#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace psd {
namespace {

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(1);
  w.key("b").value("x");
  w.key("c").value(true);
  w.key("d").null();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"x","c":true,"d":null})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("arr").begin_array();
  w.value(1).value(2.5);
  w.begin_object();
  w.key("k").value("v");
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"arr":[1,2.5,{"k":"v"}]})");
}

TEST(JsonWriter, TopLevelArray) {
  JsonWriter w;
  w.begin_array();
  w.value("a").value("b");
  w.end_array();
  EXPECT_EQ(w.str(), R"(["a","b"])");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("o").begin_object();
  w.end_object();
  w.key("a").begin_array();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"o":{},"a":[]})");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_object();
  w.key("quote\"key").value("line\nbreak\ttab\\slash");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"quote\\\"key\":\"line\\nbreak\\ttab\\\\slash\"}");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriter, DoubleRoundTripPrecision) {
  JsonWriter w;
  w.begin_array();
  w.value(0.1);
  w.end_array();
  const std::string s = w.str();
  EXPECT_EQ(std::stod(s.substr(1, s.size() - 2)), 0.1);
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW((void)w.str(), InvalidArgument);  // unclosed
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), InvalidArgument);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), InvalidArgument);  // key inside array
  }
  {
    JsonWriter w;
    EXPECT_THROW(w.end_object(), InvalidArgument);  // nothing open
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.end_object(), InvalidArgument);  // mismatched close
  }
  {
    JsonWriter w;
    w.value(1);
    EXPECT_THROW(w.value(2), InvalidArgument);  // two top-level values
  }
}

}  // namespace
}  // namespace psd
