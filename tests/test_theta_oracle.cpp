#include "psd/flow/theta.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "psd/topo/builders.hpp"
#include "psd/topo/properties.hpp"

namespace psd::flow {
namespace {

using topo::Matching;

TEST(ThetaOracle, RingDispatchMatchesClosedForm) {
  const auto g = topo::directed_ring(64, gbps(800));
  const ThetaOracle oracle(g, gbps(800));
  for (int k : {1, 2, 7, 32, 63}) {
    EXPECT_NEAR(oracle.theta(Matching::rotation(64, k)), 1.0 / k, 1e-12);
  }
}

TEST(ThetaOracle, CachesRepeatedQueries) {
  const auto g = topo::directed_ring(16, gbps(800));
  const ThetaOracle oracle(g, gbps(800));
  const auto m = Matching::rotation(16, 3);
  EXPECT_EQ(oracle.cache_hits(), 0u);
  const double first = oracle.theta(m);
  EXPECT_EQ(oracle.cache_size(), 1u);
  const double second = oracle.theta(m);
  EXPECT_EQ(oracle.cache_hits(), 1u);
  EXPECT_DOUBLE_EQ(first, second);
  (void)oracle.theta(Matching::rotation(16, 4));
  EXPECT_EQ(oracle.cache_size(), 2u);
}

TEST(ThetaOracle, CacheCanBeDisabled) {
  const auto g = topo::directed_ring(8, gbps(800));
  ThetaOptions opts;
  opts.use_cache = false;
  const ThetaOracle oracle(g, gbps(800), opts);
  (void)oracle.theta(Matching::rotation(8, 2));
  (void)oracle.theta(Matching::rotation(8, 2));
  EXPECT_EQ(oracle.cache_hits(), 0u);
  EXPECT_EQ(oracle.cache_size(), 0u);
}

TEST(ThetaOracle, EmptyMatchingInfinite) {
  const auto g = topo::directed_ring(8, gbps(800));
  const ThetaOracle oracle(g, gbps(800));
  EXPECT_TRUE(std::isinf(oracle.theta(Matching(8))));
}

TEST(ThetaOracle, SmallGeneralGraphUsesExactLp) {
  const auto g = topo::bidirectional_ring(4, gbps(800));
  const ThetaOracle oracle(g, gbps(800));
  EXPECT_NEAR(oracle.theta(Matching::rotation(4, 1)), 4.0 / 3.0, 1e-7);
}

TEST(ThetaOracle, LargeGeneralGraphFallsBackToFptas) {
  const auto g = topo::torus_2d(4, 4, gbps(800));  // 64 edges, K=16 -> GK
  ThetaOptions opts;
  opts.exact_var_limit = 100;  // force the FPTAS path
  opts.epsilon = 0.03;
  const ThetaOracle oracle(g, gbps(800), opts);
  const double theta = oracle.theta(Matching::rotation(16, 1));
  EXPECT_GT(theta, 0.5);
  EXPECT_LE(theta, 4.0 + 1e-6);
}

TEST(ThetaOracle, ConcurrentFlowExposesRouting) {
  const auto g = topo::directed_ring(6, gbps(800));
  const ThetaOracle oracle(g, gbps(800));
  const auto res = oracle.concurrent_flow(Matching::rotation(6, 2));
  EXPECT_NEAR(res.theta, 0.5, 1e-12);
  EXPECT_EQ(res.flow.size(), 6u);
}

TEST(ThetaOracle, RejectsBadInputs) {
  const auto g = topo::directed_ring(8, gbps(800));
  EXPECT_THROW(ThetaOracle(g, gbps(0)), psd::InvalidArgument);
  const ThetaOracle oracle(g, gbps(800));
  EXPECT_THROW((void)oracle.theta(Matching(5)), psd::InvalidArgument);
}

TEST(ThetaProxy, UpperBoundsExactTheta) {
  const auto ring = topo::directed_ring(16, gbps(800));
  const ThetaOracle oracle(ring, gbps(800));
  for (int k : {1, 3, 7, 15}) {
    const auto m = Matching::rotation(16, k);
    const double proxy = theta_upper_bound_hop_capacity(ring, m, gbps(800));
    EXPECT_GE(proxy + 1e-12, oracle.theta(m)) << "k=" << k;
  }
}

TEST(ThetaProxy, ExactOnUniformRotations) {
  // Rotations load every ring link equally, so the hop-capacity bound is
  // tight: proxy == θ == 1/k.
  const auto ring = topo::directed_ring(16, gbps(800));
  for (int k : {1, 2, 4, 8}) {
    const auto m = Matching::rotation(16, k);
    EXPECT_NEAR(theta_upper_bound_hop_capacity(ring, m, gbps(800)), 1.0 / k, 1e-12);
  }
}

TEST(ThetaProxy, LooseOnAsymmetricPatterns) {
  const auto ring = topo::directed_ring(8, gbps(800));
  // Two parallel same-direction flows share links 1..3: the hop-capacity
  // bound ignores the contention and reports 1.0 while θ is 0.5.
  const auto m = topo::Matching::from_pairs(8, {{0, 4}, {1, 5}});
  const ThetaOracle oracle(ring, gbps(800));
  const double exact = oracle.theta(m);
  const double proxy = theta_upper_bound_hop_capacity(ring, m, gbps(800));
  EXPECT_NEAR(exact, 0.5, 1e-12);
  EXPECT_NEAR(proxy, 1.0, 1e-12);  // strictly optimistic
}

TEST(ThetaProxy, EmptyMatchingInfinite) {
  const auto ring = topo::directed_ring(8, gbps(800));
  EXPECT_TRUE(std::isinf(theta_upper_bound_hop_capacity(ring, Matching(8), gbps(800))));
}

}  // namespace
}  // namespace psd::flow
