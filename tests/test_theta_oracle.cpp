#include "psd/flow/theta.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "psd/topo/builders.hpp"
#include "psd/topo/properties.hpp"
#include "psd/topo/shortest_path.hpp"

// Global allocation counter: this binary replaces the plain operator
// new/delete so the cached θ-lookup path can be asserted allocation-free
// (tests/CMakeLists.txt builds one executable per test file precisely so
// this override stays contained).
namespace {
std::atomic<std::size_t> g_live_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace psd::flow {
namespace {

using topo::Matching;

std::size_t alloc_count() {
  return g_live_allocs.load(std::memory_order_relaxed);
}

TEST(ThetaOracle, RingDispatchMatchesClosedForm) {
  const auto g = topo::directed_ring(64, gbps(800));
  const ThetaOracle oracle(g, gbps(800));
  for (int k : {1, 2, 7, 32, 63}) {
    EXPECT_NEAR(oracle.theta(Matching::rotation(64, k)), 1.0 / k, 1e-12);
  }
}

TEST(ThetaOracle, CachesRepeatedQueries) {
  const auto g = topo::directed_ring(16, gbps(800));
  const ThetaOracle oracle(g, gbps(800));
  const auto m = Matching::rotation(16, 3);
  EXPECT_EQ(oracle.cache_hits(), 0u);
  const double first = oracle.theta(m);
  EXPECT_EQ(oracle.cache_size(), 1u);
  const double second = oracle.theta(m);
  EXPECT_EQ(oracle.cache_hits(), 1u);
  EXPECT_DOUBLE_EQ(first, second);
  (void)oracle.theta(Matching::rotation(16, 4));
  EXPECT_EQ(oracle.cache_size(), 2u);
}

TEST(ThetaOracle, CacheCanBeDisabled) {
  const auto g = topo::directed_ring(8, gbps(800));
  ThetaOptions opts;
  opts.use_cache = false;
  const ThetaOracle oracle(g, gbps(800), opts);
  (void)oracle.theta(Matching::rotation(8, 2));
  (void)oracle.theta(Matching::rotation(8, 2));
  EXPECT_EQ(oracle.cache_hits(), 0u);
  EXPECT_EQ(oracle.cache_size(), 0u);
  EXPECT_EQ(oracle.cache_evictions(), 0u);
}

TEST(ThetaOracle, DisabledCacheMatchesCachedValues) {
  const auto g = topo::directed_ring(16, gbps(800));
  ThetaOptions no_cache;
  no_cache.use_cache = false;
  const ThetaOracle uncached(g, gbps(800), no_cache);
  const ThetaOracle cached(g, gbps(800));
  for (int k : {1, 3, 5, 3, 1}) {
    const auto m = Matching::rotation(16, k);
    EXPECT_DOUBLE_EQ(uncached.theta(m), cached.theta(m)) << "k=" << k;
  }
}

TEST(ThetaOracle, HitRateAccountingAcrossRepeatedRotations) {
  const auto g = topo::directed_ring(16, gbps(800));
  const ThetaOracle oracle(g, gbps(800));
  for (int pass = 0; pass < 3; ++pass) {
    for (int k = 1; k <= 5; ++k) {
      (void)oracle.theta(Matching::rotation(16, k));
    }
  }
  // First pass misses all 5, the two later passes hit all 5.
  EXPECT_EQ(oracle.cache_size(), 5u);
  EXPECT_EQ(oracle.cache_hits(), 10u);
  EXPECT_EQ(oracle.cache_evictions(), 0u);
}

TEST(ThetaOracle, LruEvictsAtConfiguredBound) {
  const auto g = topo::directed_ring(16, gbps(800));
  ThetaOptions opts;
  opts.cache_capacity = 2;
  const ThetaOracle oracle(g, gbps(800), opts);
  const auto m1 = Matching::rotation(16, 1);
  const auto m2 = Matching::rotation(16, 2);
  const auto m3 = Matching::rotation(16, 3);
  (void)oracle.theta(m1);
  (void)oracle.theta(m2);
  EXPECT_EQ(oracle.cache_size(), 2u);
  EXPECT_EQ(oracle.cache_evictions(), 0u);

  (void)oracle.theta(m1);  // m1 becomes most recently used
  EXPECT_EQ(oracle.cache_hits(), 1u);
  (void)oracle.theta(m3);  // evicts m2 (least recently used), not m1
  EXPECT_EQ(oracle.cache_size(), 2u);
  EXPECT_EQ(oracle.cache_evictions(), 1u);

  (void)oracle.theta(m1);  // still cached
  EXPECT_EQ(oracle.cache_hits(), 2u);
  (void)oracle.theta(m2);  // miss: was evicted, evicts m3 in turn
  EXPECT_EQ(oracle.cache_hits(), 2u);
  EXPECT_EQ(oracle.cache_evictions(), 2u);
  EXPECT_EQ(oracle.cache_size(), 2u);
}

TEST(ThetaOracle, RejectsZeroCapacityWithCache) {
  const auto g = topo::directed_ring(8, gbps(800));
  ThetaOptions opts;
  opts.cache_capacity = 0;
  EXPECT_THROW(ThetaOracle(g, gbps(800), opts), psd::InvalidArgument);
  opts.use_cache = false;  // capacity irrelevant when the cache is off
  EXPECT_NO_THROW(ThetaOracle(g, gbps(800), opts));
}

TEST(ThetaOracle, CachedLookupPerformsNoHeapAllocation) {
  const auto g = topo::directed_ring(64, gbps(800));
  const ThetaOracle oracle(g, gbps(800));
  const auto m = Matching::rotation(64, 7);
  const double first = oracle.theta(m);  // miss: computes and inserts

  const std::size_t before = alloc_count();
  double value = 0.0;
  for (int i = 0; i < 100; ++i) value = oracle.theta(m);
  EXPECT_EQ(alloc_count(), before)
      << "cache-hit path allocated on the heap";
  EXPECT_DOUBLE_EQ(value, first);
  EXPECT_EQ(oracle.cache_hits(), 100u);
}

TEST(ThetaOracle, ConcurrentLookupsAreConsistent) {
  // The cache is mutex-guarded: hammer the same oracle from several threads
  // with a mix of hits and misses and verify every thread observes the
  // exact closed-form values and the cache stays coherent.
  const auto g = topo::directed_ring(32, gbps(800));
  const ThetaOracle oracle(g, gbps(800));
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int k = 1 + (i + t) % 8;
        const double got = oracle.theta(Matching::rotation(32, k));
        if (std::abs(got - 1.0 / k) > 1e-12) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(oracle.cache_size(), 8u);
  // Every query beyond the 8 distinct misses was served from cache (racing
  // duplicate misses may recompute, so allow a small shortfall).
  EXPECT_GE(oracle.cache_hits(), static_cast<std::size_t>(kThreads * kIters) -
                                     8u * static_cast<std::size_t>(kThreads));
}

TEST(ThetaOracle, ContentionCounterStartsAtZero) {
  const auto g = topo::directed_ring(8, gbps(800));
  const ThetaOracle oracle(g, gbps(800));
  (void)oracle.theta(Matching::rotation(8, 2));
  (void)oracle.theta(Matching::rotation(8, 2));
  // Single-threaded use never contends the lock.
  EXPECT_EQ(oracle.cache_lock_contentions(), 0u);
}

TEST(ThetaOracle, BaseHopsMatchesAllPairsHops) {
  const auto g = topo::directed_ring(16, gbps(800));
  const ThetaOracle oracle(g, gbps(800));
  const auto& cached = oracle.base_hops();
  const auto fresh = topo::all_pairs_hops(g);
  ASSERT_EQ(cached.size(), fresh.size());
  for (std::size_t u = 0; u < fresh.size(); ++u) {
    EXPECT_EQ(cached[u], fresh[u]) << "u=" << u;
  }
  // Second call returns the same object (computed once).
  EXPECT_EQ(&oracle.base_hops(), &cached);
}

TEST(ThetaOracle, EmptyMatchingInfinite) {
  const auto g = topo::directed_ring(8, gbps(800));
  const ThetaOracle oracle(g, gbps(800));
  EXPECT_TRUE(std::isinf(oracle.theta(Matching(8))));
}

TEST(ThetaOracle, SmallGeneralGraphUsesExactLp) {
  const auto g = topo::bidirectional_ring(4, gbps(800));
  const ThetaOracle oracle(g, gbps(800));
  EXPECT_NEAR(oracle.theta(Matching::rotation(4, 1)), 4.0 / 3.0, 1e-7);
}

TEST(ThetaOracle, LargeGeneralGraphFallsBackToFptas) {
  const auto g = topo::torus_2d(4, 4, gbps(800));  // 64 edges, K=16 -> GK
  ThetaOptions opts;
  opts.exact_var_limit = 100;  // force the FPTAS path
  opts.epsilon = 0.03;
  const ThetaOracle oracle(g, gbps(800), opts);
  const double theta = oracle.theta(Matching::rotation(16, 1));
  EXPECT_GT(theta, 0.5);
  EXPECT_LE(theta, 4.0 + 1e-6);
}

TEST(ThetaOracle, ConcurrentFlowExposesRouting) {
  const auto g = topo::directed_ring(6, gbps(800));
  const ThetaOracle oracle(g, gbps(800));
  const auto res = oracle.concurrent_flow(Matching::rotation(6, 2));
  EXPECT_NEAR(res.theta, 0.5, 1e-12);
  EXPECT_EQ(res.flow.num_commodities(), 6u);
}

TEST(ThetaOracle, CancelledSolveLeavesNoPartialCacheState) {
  const auto g = topo::torus_2d(4, 4, gbps(800));
  util::CancellationToken token;
  ThetaOptions opts;
  opts.exact_var_limit = 100;  // force the (cancellable mid-run) FPTAS path
  opts.epsilon = 0.03;
  opts.cancel = &token;
  const ThetaOracle oracle(g, gbps(800), opts);
  const auto m = Matching::rotation(16, 1);

  token.cancel();
  EXPECT_THROW((void)oracle.theta(m), psd::Cancelled);
  // No partial insert: a cancelled solve must be invisible to the memo.
  EXPECT_EQ(oracle.cache_size(), 0u);
  EXPECT_EQ(oracle.cache_hits(), 0u);

  // After reset, the identical query computes the bit-exact uncancelled
  // answer (reference: a token-free oracle over the same context).
  token.reset();
  ThetaOptions plain = opts;
  plain.cancel = nullptr;
  const ThetaOracle reference(g, gbps(800), plain);
  EXPECT_EQ(oracle.theta(m), reference.theta(m));
  EXPECT_EQ(oracle.cache_size(), 1u);
}

TEST(ThetaOracle, RejectsBadInputs) {
  const auto g = topo::directed_ring(8, gbps(800));
  EXPECT_THROW(ThetaOracle(g, gbps(0)), psd::InvalidArgument);
  const ThetaOracle oracle(g, gbps(800));
  EXPECT_THROW((void)oracle.theta(Matching(5)), psd::InvalidArgument);
}

TEST(ThetaProxy, UpperBoundsExactTheta) {
  const auto ring = topo::directed_ring(16, gbps(800));
  const ThetaOracle oracle(ring, gbps(800));
  for (int k : {1, 3, 7, 15}) {
    const auto m = Matching::rotation(16, k);
    const double proxy = theta_upper_bound_hop_capacity(ring, m, gbps(800));
    EXPECT_GE(proxy + 1e-12, oracle.theta(m)) << "k=" << k;
  }
}

TEST(ThetaProxy, ExactOnUniformRotations) {
  // Rotations load every ring link equally, so the hop-capacity bound is
  // tight: proxy == θ == 1/k.
  const auto ring = topo::directed_ring(16, gbps(800));
  for (int k : {1, 2, 4, 8}) {
    const auto m = Matching::rotation(16, k);
    EXPECT_NEAR(theta_upper_bound_hop_capacity(ring, m, gbps(800)), 1.0 / k, 1e-12);
  }
}

TEST(ThetaProxy, LooseOnAsymmetricPatterns) {
  const auto ring = topo::directed_ring(8, gbps(800));
  // Two parallel same-direction flows share links 1..3: the hop-capacity
  // bound ignores the contention and reports 1.0 while θ is 0.5.
  const auto m = topo::Matching::from_pairs(8, {{0, 4}, {1, 5}});
  const ThetaOracle oracle(ring, gbps(800));
  const double exact = oracle.theta(m);
  const double proxy = theta_upper_bound_hop_capacity(ring, m, gbps(800));
  EXPECT_NEAR(exact, 0.5, 1e-12);
  EXPECT_NEAR(proxy, 1.0, 1e-12);  // strictly optimistic
}

TEST(ThetaProxy, EmptyMatchingInfinite) {
  const auto ring = topo::directed_ring(8, gbps(800));
  EXPECT_TRUE(std::isinf(theta_upper_bound_hop_capacity(ring, Matching(8), gbps(800))));
}

}  // namespace
}  // namespace psd::flow
