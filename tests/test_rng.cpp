#include "psd/util/rng.hpp"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "psd/util/error.hpp"

namespace psd {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng r(11);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(r.next_below(17), 17u);
  EXPECT_THROW((void)r.next_below(0), InvalidArgument);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng r(13);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10'000; ++i) ++seen[r.next_below(10)];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const int v = r.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW((void)r.uniform_int(3, 2), InvalidArgument);
}

TEST(Rng, PermutationIsValid) {
  Rng r(23);
  for (int n : {0, 1, 2, 8, 100}) {
    auto p = r.permutation(n);
    ASSERT_EQ(static_cast<int>(p.size()), n);
    std::vector<int> sorted = p;
    std::sort(sorted.begin(), sorted.end());
    std::vector<int> expect(static_cast<std::size_t>(n));
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(sorted, expect);
  }
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng r(29);
  std::vector<int> v{5, 5, 1, 2, 3};
  auto sorted_before = v;
  std::sort(sorted_before.begin(), sorted_before.end());
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted_before);
}

}  // namespace
}  // namespace psd
