#include "psd/photonic/fabric.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "psd/topo/properties.hpp"

namespace psd::photonic {
namespace {

using topo::Matching;

Fabric make_fabric(int n = 8, TimeNs alpha_r = microseconds(10)) {
  return Fabric(n, gbps(800),
                std::make_unique<ConstantDelayModel>(alpha_r),
                Matching::rotation(n, 1));
}

TEST(Fabric, InitialState) {
  const auto f = make_fabric();
  EXPECT_EQ(f.num_ports(), 8);
  EXPECT_DOUBLE_EQ(f.port_bandwidth().gbps(), 800.0);
  EXPECT_TRUE(f.configuration() == Matching::rotation(8, 1));
  EXPECT_EQ(f.stats().reconfigurations, 0);
}

TEST(Fabric, ReconfigureChargesAndUpdates) {
  auto f = make_fabric();
  const auto target = Matching::rotation(8, 3);
  EXPECT_DOUBLE_EQ(f.peek_delay(target).us(), 10.0);
  EXPECT_DOUBLE_EQ(f.reconfigure(target).us(), 10.0);
  EXPECT_TRUE(f.configuration() == target);
  EXPECT_EQ(f.stats().reconfigurations, 1);
  EXPECT_DOUBLE_EQ(f.stats().total_reconfig_time.us(), 10.0);
}

TEST(Fabric, IdentityReconfigureIsFree) {
  auto f = make_fabric();
  EXPECT_DOUBLE_EQ(f.reconfigure(Matching::rotation(8, 1)).ns(), 0.0);
  EXPECT_EQ(f.stats().reconfigurations, 0);
}

TEST(Fabric, CurrentTopologyRealizesConfiguration) {
  auto f = make_fabric();
  f.reconfigure(Matching::from_pairs(8, {{0, 4}, {4, 0}}));
  const auto g = f.current_topology();
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(topo::matches_topology(g, f.configuration()));
  EXPECT_DOUBLE_EQ(g.edge(0).capacity.gbps(), 800.0);
}

TEST(Fabric, CopyPreservesStateIndependently) {
  auto f = make_fabric();
  f.reconfigure(Matching::rotation(8, 2));
  Fabric copy = f;
  copy.reconfigure(Matching::rotation(8, 3));
  EXPECT_TRUE(f.configuration() == Matching::rotation(8, 2));
  EXPECT_TRUE(copy.configuration() == Matching::rotation(8, 3));
  EXPECT_EQ(f.stats().reconfigurations, 1);
  EXPECT_EQ(copy.stats().reconfigurations, 2);
}

TEST(Fabric, RejectsBadConstruction) {
  EXPECT_THROW(Fabric(1, gbps(800),
                      std::make_unique<ConstantDelayModel>(TimeNs(0)), Matching(1)),
               psd::InvalidArgument);
  EXPECT_THROW(Fabric(4, gbps(0),
                      std::make_unique<ConstantDelayModel>(TimeNs(0)), Matching(4)),
               psd::InvalidArgument);
  EXPECT_THROW(Fabric(4, gbps(800), nullptr, Matching(4)), psd::InvalidArgument);
  EXPECT_THROW(Fabric(4, gbps(800),
                      std::make_unique<ConstantDelayModel>(TimeNs(0)), Matching(5)),
               psd::InvalidArgument);
}

TEST(Fabric, SizeMismatchOnReconfigure) {
  auto f = make_fabric(4);
  EXPECT_THROW((void)f.reconfigure(Matching(5)), psd::InvalidArgument);
}

TEST(Awgr, WavelengthAssignmentIsContentionFree) {
  // λ(i→j) = (j−i) mod n; receivers are distinct in a matching, so no two
  // signals collide at an output.
  const auto config = Matching::from_pairs(8, {{0, 3}, {1, 2}, {5, 6}, {6, 5}});
  const auto lambda = awgr_wavelength_assignment(config);
  EXPECT_EQ(lambda[0], 3);
  EXPECT_EQ(lambda[1], 1);
  EXPECT_EQ(lambda[5], 1);
  EXPECT_EQ(lambda[6], 7);  // (5-6) mod 8
  EXPECT_EQ(lambda[2], -1);  // idle port
  // No output collisions: (src + λ) mod n pairwise distinct among active.
  std::vector<int> outputs;
  for (int i = 0; i < 8; ++i) {
    if (lambda[static_cast<std::size_t>(i)] >= 0) {
      outputs.push_back((i + lambda[static_cast<std::size_t>(i)]) % 8);
    }
  }
  std::sort(outputs.begin(), outputs.end());
  EXPECT_EQ(std::adjacent_find(outputs.begin(), outputs.end()), outputs.end());
}

TEST(Awgr, EmptyConfigurationAllIdle) {
  const auto lambda = awgr_wavelength_assignment(Matching(4));
  for (int v : lambda) EXPECT_EQ(v, -1);
}

}  // namespace
}  // namespace psd::photonic
