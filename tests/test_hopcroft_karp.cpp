#include "psd/bvn/hopcroft_karp.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "psd/util/error.hpp"
#include "psd/util/rng.hpp"

namespace psd::bvn {
namespace {

/// Validates matching consistency: mutual pointers and edges exist.
void expect_consistent(const BipartiteGraph& g, const MatchingResult& r) {
  int size = 0;
  for (int l = 0; l < g.n_left; ++l) {
    const int m = r.match_left[static_cast<std::size_t>(l)];
    if (m >= 0) {
      ++size;
      EXPECT_EQ(r.match_right[static_cast<std::size_t>(m)], l);
      const auto& adj = g.adj[static_cast<std::size_t>(l)];
      EXPECT_NE(std::find(adj.begin(), adj.end(), m), adj.end());
    }
  }
  EXPECT_EQ(size, r.size);
}

TEST(HopcroftKarp, PerfectMatchingOnCompleteBipartite) {
  BipartiteGraph g;
  g.n_left = g.n_right = 5;
  g.adj.assign(5, {0, 1, 2, 3, 4});
  const auto r = hopcroft_karp(g);
  EXPECT_EQ(r.size, 5);
  expect_consistent(g, r);
}

TEST(HopcroftKarp, EmptyGraph) {
  BipartiteGraph g;
  g.n_left = 3;
  g.n_right = 3;
  g.adj.assign(3, {});
  EXPECT_EQ(hopcroft_karp(g).size, 0);
}

TEST(HopcroftKarp, KnownMaximumOfTwo) {
  // Left 0,1 both only reach right 0; left 2 reaches right 1.
  BipartiteGraph g;
  g.n_left = 3;
  g.n_right = 2;
  g.adj = {{0}, {0}, {1}};
  const auto r = hopcroft_karp(g);
  EXPECT_EQ(r.size, 2);
  expect_consistent(g, r);
}

TEST(HopcroftKarp, RequiresAugmentingPaths) {
  // Greedy left-to-right would match 0-0 and block 1; HK augments.
  BipartiteGraph g;
  g.n_left = 2;
  g.n_right = 2;
  g.adj = {{0, 1}, {0}};
  const auto r = hopcroft_karp(g);
  EXPECT_EQ(r.size, 2);
  EXPECT_EQ(r.match_left[1], 0);
  EXPECT_EQ(r.match_left[0], 1);
}

TEST(HopcroftKarp, StarGraph) {
  BipartiteGraph g;
  g.n_left = 4;
  g.n_right = 1;
  g.adj.assign(4, {0});
  EXPECT_EQ(hopcroft_karp(g).size, 1);
}

TEST(HopcroftKarp, PermutationSupportHasPerfectMatching) {
  psd::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 16;
    const auto perm = rng.permutation(n);
    BipartiteGraph g;
    g.n_left = g.n_right = n;
    g.adj.resize(static_cast<std::size_t>(n));
    for (int l = 0; l < n; ++l) {
      g.adj[static_cast<std::size_t>(l)].push_back(perm[static_cast<std::size_t>(l)]);
    }
    const auto r = hopcroft_karp(g);
    EXPECT_EQ(r.size, n);
    for (int l = 0; l < n; ++l) {
      EXPECT_EQ(r.match_left[static_cast<std::size_t>(l)],
                perm[static_cast<std::size_t>(l)]);
    }
  }
}

TEST(HopcroftKarp, RandomDenseGraphsConsistent) {
  psd::Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    BipartiteGraph g;
    g.n_left = 12;
    g.n_right = 12;
    g.adj.resize(12);
    for (int l = 0; l < 12; ++l) {
      for (int r = 0; r < 12; ++r) {
        if (rng.next_double() < 0.3) {
          g.adj[static_cast<std::size_t>(l)].push_back(r);
        }
      }
    }
    const auto res = hopcroft_karp(g);
    expect_consistent(g, res);
  }
}

TEST(HopcroftKarp, RejectsMalformedInput) {
  BipartiteGraph g;
  g.n_left = 2;
  g.n_right = 2;
  g.adj = {{0}};  // missing adjacency for left vertex 1
  EXPECT_THROW((void)hopcroft_karp(g), psd::InvalidArgument);
  g.adj = {{0}, {5}};  // right vertex out of range
  EXPECT_THROW((void)hopcroft_karp(g), psd::InvalidArgument);
}

}  // namespace
}  // namespace psd::bvn
