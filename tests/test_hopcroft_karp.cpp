#include "psd/bvn/hopcroft_karp.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

#include <gtest/gtest.h>

#include "psd/util/error.hpp"
#include "psd/util/rng.hpp"

namespace psd::bvn {
namespace {

/// Validates matching consistency: mutual pointers and edges exist.
void expect_consistent(const BipartiteGraph& g, const MatchingResult& r) {
  int size = 0;
  for (int l = 0; l < g.n_left; ++l) {
    const int m = r.match_left[static_cast<std::size_t>(l)];
    if (m >= 0) {
      ++size;
      EXPECT_EQ(r.match_right[static_cast<std::size_t>(m)], l);
      const auto& adj = g.adj[static_cast<std::size_t>(l)];
      EXPECT_NE(std::find(adj.begin(), adj.end(), m), adj.end());
    }
  }
  EXPECT_EQ(size, r.size);
}

TEST(HopcroftKarp, PerfectMatchingOnCompleteBipartite) {
  BipartiteGraph g;
  g.n_left = g.n_right = 5;
  g.adj.assign(5, {0, 1, 2, 3, 4});
  const auto r = hopcroft_karp(g);
  EXPECT_EQ(r.size, 5);
  expect_consistent(g, r);
}

TEST(HopcroftKarp, EmptyGraph) {
  BipartiteGraph g;
  g.n_left = 3;
  g.n_right = 3;
  g.adj.assign(3, {});
  EXPECT_EQ(hopcroft_karp(g).size, 0);
}

TEST(HopcroftKarp, KnownMaximumOfTwo) {
  // Left 0,1 both only reach right 0; left 2 reaches right 1.
  BipartiteGraph g;
  g.n_left = 3;
  g.n_right = 2;
  g.adj = {{0}, {0}, {1}};
  const auto r = hopcroft_karp(g);
  EXPECT_EQ(r.size, 2);
  expect_consistent(g, r);
}

TEST(HopcroftKarp, RequiresAugmentingPaths) {
  // Greedy left-to-right would match 0-0 and block 1; HK augments.
  BipartiteGraph g;
  g.n_left = 2;
  g.n_right = 2;
  g.adj = {{0, 1}, {0}};
  const auto r = hopcroft_karp(g);
  EXPECT_EQ(r.size, 2);
  EXPECT_EQ(r.match_left[1], 0);
  EXPECT_EQ(r.match_left[0], 1);
}

TEST(HopcroftKarp, StarGraph) {
  BipartiteGraph g;
  g.n_left = 4;
  g.n_right = 1;
  g.adj.assign(4, {0});
  EXPECT_EQ(hopcroft_karp(g).size, 1);
}

TEST(HopcroftKarp, PermutationSupportHasPerfectMatching) {
  psd::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 16;
    const auto perm = rng.permutation(n);
    BipartiteGraph g;
    g.n_left = g.n_right = n;
    g.adj.resize(static_cast<std::size_t>(n));
    for (int l = 0; l < n; ++l) {
      g.adj[static_cast<std::size_t>(l)].push_back(perm[static_cast<std::size_t>(l)]);
    }
    const auto r = hopcroft_karp(g);
    EXPECT_EQ(r.size, n);
    for (int l = 0; l < n; ++l) {
      EXPECT_EQ(r.match_left[static_cast<std::size_t>(l)],
                perm[static_cast<std::size_t>(l)]);
    }
  }
}

TEST(HopcroftKarp, RandomDenseGraphsConsistent) {
  psd::Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    BipartiteGraph g;
    g.n_left = 12;
    g.n_right = 12;
    g.adj.resize(12);
    for (int l = 0; l < 12; ++l) {
      for (int r = 0; r < 12; ++r) {
        if (rng.next_double() < 0.3) {
          g.adj[static_cast<std::size_t>(l)].push_back(r);
        }
      }
    }
    const auto res = hopcroft_karp(g);
    expect_consistent(g, res);
  }
}

TEST(HopcroftKarp, RejectsMalformedInput) {
  BipartiteGraph g;
  g.n_left = 2;
  g.n_right = 2;
  g.adj = {{0}};  // missing adjacency for left vertex 1
  EXPECT_THROW((void)hopcroft_karp(g), psd::InvalidArgument);
  g.adj = {{0}, {5}};  // right vertex out of range
  EXPECT_THROW((void)hopcroft_karp(g), psd::InvalidArgument);
}

BipartiteGraph random_sparse(int n, double avg_degree, std::uint64_t seed) {
  psd::Rng rng(seed);
  BipartiteGraph g;
  g.n_left = g.n_right = n;
  g.adj.resize(static_cast<std::size_t>(n));
  for (int l = 0; l < n; ++l) {
    for (int r = 0; r < n; ++r) {
      if (rng.next_double() < avg_degree / n) {
        g.adj[static_cast<std::size_t>(l)].push_back(r);
      }
    }
  }
  return g;
}

TEST(HopcroftKarpWarmStart, EmptyInitMatchesColdSolve) {
  // The warm overload seeded with an empty matching must reach the same
  // maximum size as the cold CSR solver — two independent engines
  // cross-checking each other.
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const auto g = random_sparse(96, 5.0, seed);
    MatchingResult empty;
    empty.match_left.assign(96, -1);
    empty.match_right.assign(96, -1);
    const auto warm = hopcroft_karp(g, empty);
    const auto cold = hopcroft_karp(g);
    EXPECT_EQ(warm.size, cold.size) << "seed " << seed;
    expect_consistent(g, warm);
  }
}

TEST(HopcroftKarpWarmStart, RepairsDamagedMatchingToMaximum) {
  const auto g = random_sparse(128, 6.0, 17);
  const auto cold = hopcroft_karp(g);
  // Strip every fourth matched pair; re-augmentation must restore the size.
  MatchingResult damaged = cold;
  int stripped = 0;
  for (int l = 0; l < g.n_left; ++l) {
    const int r = damaged.match_left[static_cast<std::size_t>(l)];
    if (r >= 0 && ++stripped % 4 == 0) {
      damaged.match_left[static_cast<std::size_t>(l)] = -1;
      damaged.match_right[static_cast<std::size_t>(r)] = -1;
      --damaged.size;
    }
  }
  ASSERT_LT(damaged.size, cold.size);
  const auto repaired = hopcroft_karp(g, damaged);
  EXPECT_EQ(repaired.size, cold.size);
  expect_consistent(g, repaired);
}

TEST(HopcroftKarpWarmStart, RepairsAfterEdgeRemoval) {
  // The incremental-Birkhoff scenario: matched edges leave the graph and the
  // matching together; the warm solve only pays for the lost pairs.
  auto g = random_sparse(64, 6.0, 23);
  auto m = hopcroft_karp(g);
  for (int round = 0; round < 5; ++round) {
    // Remove the first two matched edges from both graph and matching.
    int removed = 0;
    for (int l = 0; l < g.n_left && removed < 2; ++l) {
      const int r = m.match_left[static_cast<std::size_t>(l)];
      if (r < 0) continue;
      auto& nbrs = g.adj[static_cast<std::size_t>(l)];
      nbrs.erase(std::find(nbrs.begin(), nbrs.end(), r));
      m.match_left[static_cast<std::size_t>(l)] = -1;
      m.match_right[static_cast<std::size_t>(r)] = -1;
      --m.size;
      ++removed;
    }
    m = hopcroft_karp(g, std::move(m));
    const auto cold = hopcroft_karp(g);
    EXPECT_EQ(m.size, cold.size) << "round " << round;
    expect_consistent(g, m);
  }
}

TEST(HopcroftKarpWarmStart, CsrRepairMatchesColdAfterSingleEdgeDamage) {
  // The bench-shaped regression for the warm-start inversion: damage one
  // matched edge of a maximum matching (remove it from graph and matching)
  // and re-augment. The repaired matching must be maximum on the damaged
  // graph — equal in size to a cold solve — and consistent. This now runs
  // through the same CSR engine as the cold path (the greedy pass skips
  // already-matched left vertices), which is what restored warm < cold in
  // BM_HopcroftKarpWarmStart.
  psd::Rng rng(4711);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 200;
    BipartiteGraph g;
    g.n_left = g.n_right = n;
    g.adj.resize(static_cast<std::size_t>(n));
    for (int l = 0; l < n; ++l) {
      const int deg = rng.uniform_int(2, 8);
      for (int d = 0; d < deg; ++d) {
        const int r = rng.uniform_int(0, n - 1);
        auto& adj = g.adj[static_cast<std::size_t>(l)];
        if (std::find(adj.begin(), adj.end(), r) == adj.end()) adj.push_back(r);
      }
    }
    const auto full = hopcroft_karp(g);
    ASSERT_GT(full.size, 0);
    MatchingResult damaged = full;
    for (int l = 0; l < n; ++l) {
      const int r = damaged.match_left[static_cast<std::size_t>(l)];
      if (r >= 0) {
        auto& nbrs = g.adj[static_cast<std::size_t>(l)];
        nbrs.erase(std::find(nbrs.begin(), nbrs.end(), r));
        damaged.match_left[static_cast<std::size_t>(l)] = -1;
        damaged.match_right[static_cast<std::size_t>(r)] = -1;
        --damaged.size;
        break;
      }
    }
    const auto warm = hopcroft_karp(g, damaged);
    const auto cold = hopcroft_karp(g);
    EXPECT_EQ(warm.size, cold.size) << "trial " << trial;
    expect_consistent(g, warm);
  }
}

TEST(HopcroftKarpWarmStart, CompleteSeedIsReturnedUntouched) {
  // A warm start that is already maximum must pass through unchanged.
  BipartiteGraph g;
  g.n_left = g.n_right = 3;
  g.adj = {{0}, {1}, {2}};
  MatchingResult seed;
  seed.size = 3;
  seed.match_left = {0, 1, 2};
  seed.match_right = {0, 1, 2};
  const auto warm = hopcroft_karp(g, seed);
  EXPECT_EQ(warm.size, 3);
  EXPECT_EQ(warm.match_left, (std::vector<int>{0, 1, 2}));
}

TEST(HopcroftKarpWarmStart, RejectsMalformedWarmStarts) {
  BipartiteGraph g;
  g.n_left = 2;
  g.n_right = 2;
  g.adj = {{0, 1}, {0}};

  MatchingResult wrong_size;
  wrong_size.match_left = {-1};
  wrong_size.match_right = {-1, -1};
  EXPECT_THROW((void)hopcroft_karp(g, wrong_size), psd::InvalidArgument);

  MatchingResult inconsistent;
  inconsistent.match_left = {0, -1};
  inconsistent.match_right = {-1, -1};  // right side does not mirror
  EXPECT_THROW((void)hopcroft_karp(g, inconsistent), psd::InvalidArgument);

  MatchingResult phantom_edge;
  phantom_edge.match_left = {-1, 1};  // edge (1,1) not in the graph
  phantom_edge.match_right = {-1, 1};
  EXPECT_THROW((void)hopcroft_karp(g, phantom_edge), psd::InvalidArgument);
}

}  // namespace
}  // namespace psd::bvn
