// Golden equivalence matrix for the interval-coded chunk refactor: every
// schedule builder, across n ∈ {2..9, 16, 64} and both chunk spaces, must
// produce executor state byte-identical to the pre-refactor explicit
// std::vector<int> implementation, which is kept here as the reference.
//
// RefChunkExecutor / RefBlockExecutor are faithful ports of the pre-ChunkList
// executors (densifying every transfer with to_vector()), and
// ref_responsibility_sets is the pre-refactor merge-based recursion that the
// symmetric/periodic fast path in recursive_exchange.cpp must reproduce
// exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "psd/collective/algorithms.hpp"
#include "psd/collective/executor.hpp"
#include "psd/collective/recursive_exchange.hpp"

namespace psd::collective {
namespace {

bool pow2(int n) { return std::has_single_bit(static_cast<unsigned>(n)); }

// ---- Pre-refactor reference executors (explicit chunk vectors) ----------

class RefChunkExecutor {
 public:
  RefChunkExecutor(const CollectiveSchedule& schedule, InitMode mode, int root = 0) {
    n_ = schedule.num_nodes();
    chunks_ = schedule.num_chunks();
    words_ = static_cast<std::size_t>((n_ + 63) / 64);
    mask_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(chunks_) *
                     words_,
                 0);
    switch (mode) {
      case InitMode::kAllReduce:
        for (int j = 0; j < n_; ++j) {
          for (int c = 0; c < chunks_; ++c) set_bit(j, c, j);
        }
        break;
      case InitMode::kAllGather:
        for (int j = 0; j < n_; ++j) set_full(j, j);
        break;
      case InitMode::kBroadcast:
        for (int c = 0; c < chunks_; ++c) set_full(root, c);
        break;
    }
    run(schedule);
  }

  [[nodiscard]] const std::vector<std::uint64_t>& mask() const { return mask_; }
  [[nodiscard]] bool double_counted() const { return double_counted_; }

 private:
  void set_bit(int node, int chunk, int source) {
    mask_[idx(node, chunk) + static_cast<std::size_t>(source / 64)] |=
        std::uint64_t{1} << (source % 64);
  }
  void set_full(int node, int chunk) {
    for (std::size_t w = 0; w < words_; ++w) {
      mask_[idx(node, chunk) + w] = ~std::uint64_t{0};
    }
    const int spare = static_cast<int>(words_) * 64 - n_;
    if (spare > 0) mask_[idx(node, chunk) + words_ - 1] >>= spare;
  }
  void run(const CollectiveSchedule& schedule) {
    std::vector<std::uint64_t> snapshot;
    for (const Step& step : schedule.steps()) {
      snapshot = mask_;
      for (const Transfer& t : step.transfers) {
        for (int c : t.chunks.to_vector()) {  // densified, as pre-refactor
          const std::size_t src_off = idx(t.src, c);
          const std::size_t dst_off = idx(t.dst, c);
          for (std::size_t w = 0; w < words_; ++w) {
            const std::uint64_t incoming = snapshot[src_off + w];
            if (t.reduce) {
              if ((snapshot[dst_off + w] & incoming) != 0) double_counted_ = true;
              mask_[dst_off + w] = snapshot[dst_off + w] | incoming;
            } else {
              mask_[dst_off + w] = incoming;
            }
          }
        }
      }
    }
  }
  [[nodiscard]] std::size_t idx(int node, int chunk) const {
    return (static_cast<std::size_t>(node) * static_cast<std::size_t>(chunks_) +
            static_cast<std::size_t>(chunk)) *
           words_;
  }

  int n_ = 0;
  int chunks_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> mask_;
  bool double_counted_ = false;
};

class RefBlockExecutor {
 public:
  explicit RefBlockExecutor(const CollectiveSchedule& schedule) {
    n_ = schedule.num_nodes();
    held_.assign(static_cast<std::size_t>(n_),
                 std::vector<bool>(static_cast<std::size_t>(n_ * n_), false));
    for (int j = 0; j < n_; ++j) {
      for (int d = 0; d < n_; ++d) {
        held_[static_cast<std::size_t>(j)][static_cast<std::size_t>(j * n_ + d)] =
            true;
      }
    }
    std::vector<std::vector<bool>> snapshot;
    for (const Step& step : schedule.steps()) {
      snapshot = held_;
      for (const Transfer& t : step.transfers) {
        for (int c : t.chunks.to_vector()) {
          held_[static_cast<std::size_t>(t.dst)][static_cast<std::size_t>(c)] = true;
        }
      }
    }
  }
  [[nodiscard]] bool holds(int node, int chunk) const {
    return held_[static_cast<std::size_t>(node)][static_cast<std::size_t>(chunk)];
  }

 private:
  int n_ = 0;
  std::vector<std::vector<bool>> held_;
};

// ---- Pre-refactor reference responsibility recursion --------------------

using RefSets = std::vector<std::vector<std::vector<int>>>;

RefSets ref_responsibility_sets(int n, const PeerFn& peer) {
  const int q = std::countr_zero(static_cast<unsigned>(n));
  RefSets sets(static_cast<std::size_t>(q) + 1,
               std::vector<std::vector<int>>(static_cast<std::size_t>(n)));
  for (int j = 0; j < n; ++j) {
    sets[static_cast<std::size_t>(q)][static_cast<std::size_t>(j)] = {j};
  }
  for (int s = q - 1; s >= 0; --s) {
    for (int j = 0; j < n; ++j) {
      const int w = peer(j, s);
      const auto& mine = sets[static_cast<std::size_t>(s) + 1][static_cast<std::size_t>(j)];
      const auto& theirs = sets[static_cast<std::size_t>(s) + 1][static_cast<std::size_t>(w)];
      std::vector<int> merged;
      merged.reserve(mine.size() + theirs.size());
      std::merge(mine.begin(), mine.end(), theirs.begin(), theirs.end(),
                 std::back_inserter(merged));
      sets[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)] = std::move(merged);
    }
  }
  return sets;
}

// ---- Comparisons --------------------------------------------------------

void expect_masks_identical(const CollectiveSchedule& sched, InitMode mode,
                            const std::string& what) {
  const ChunkExecutor exec(sched, mode);
  const RefChunkExecutor ref(sched, mode);
  const int n = sched.num_nodes();
  const int chunks = sched.num_chunks();
  const std::size_t words = static_cast<std::size_t>((n + 63) / 64);
  ASSERT_EQ(exec.double_counted(), ref.double_counted()) << what;
  long long mismatches = 0;
  for (int j = 0; j < n; ++j) {
    for (int c = 0; c < chunks; ++c) {
      for (int s = 0; s < n; ++s) {
        const bool got = exec.has_contribution(j, c, s);
        const bool want =
            (ref.mask()[(static_cast<std::size_t>(j) * static_cast<std::size_t>(chunks) +
                         static_cast<std::size_t>(c)) *
                            words +
                        static_cast<std::size_t>(s / 64)] >>
             (s % 64)) &
            1U;
        if (got != want) {
          if (mismatches == 0) {
            ADD_FAILURE() << what << ": first mismatch at node " << j << " chunk "
                          << c << " source " << s << " (got " << got << ")";
          }
          ++mismatches;
        }
      }
    }
  }
  ASSERT_EQ(mismatches, 0) << what;
}

void expect_blocks_identical(const CollectiveSchedule& sched, const std::string& what) {
  const BlockExecutor exec(sched);
  const RefBlockExecutor ref(sched);
  const int n = sched.num_nodes();
  long long mismatches = 0;
  for (int j = 0; j < n; ++j) {
    for (int c = 0; c < n * n; ++c) {
      if (exec.holds(j, c) != ref.holds(j, c)) {
        if (mismatches == 0) {
          ADD_FAILURE() << what << ": first mismatch at node " << j << " block " << c;
        }
        ++mismatches;
      }
    }
  }
  ASSERT_EQ(mismatches, 0) << what;
}

void expect_aggregate_demand_identical(const CollectiveSchedule& sched,
                                       const std::string& what) {
  const auto agg = sched.aggregate_demand();
  const int n = sched.num_nodes();
  psd::Matrix ref(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (const Step& s : sched.steps()) {
    for (const auto& [src, dst] : s.matching.pairs()) {
      ref(static_cast<std::size_t>(src), static_cast<std::size_t>(dst)) +=
          s.volume.count();
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      // Bitwise equality: the aggregation must do the identical arithmetic.
      ASSERT_EQ(agg(static_cast<std::size_t>(i), static_cast<std::size_t>(j)),
                ref(static_cast<std::size_t>(i), static_cast<std::size_t>(j)))
          << what << " (" << i << ", " << j << ")";
    }
  }
}

const std::vector<int> kSizes = {2, 3, 4, 5, 6, 7, 8, 9, 16, 64};

class GoldenP : public ::testing::TestWithParam<int> {};

TEST_P(GoldenP, SegmentBuildersMatchExplicitVectorReference) {
  const int n = GetParam();
  const Bytes buf = kib(64 * n);  // keeps chunk sizes integral
  std::vector<std::pair<std::string, CollectiveSchedule>> schedules;
  schedules.emplace_back("ring-rs", ring_reduce_scatter(n, buf));
  schedules.emplace_back("ring-ag", ring_allgather(n, buf));
  schedules.emplace_back("ring-ar", ring_allreduce(n, buf));
  schedules.emplace_back("bruck-ag", bruck_allgather(n, buf));
  schedules.emplace_back("binomial-bcast", binomial_broadcast(n, n / 2, buf));
  schedules.emplace_back("binomial-reduce", binomial_reduce(n, n - 1, buf));
  schedules.emplace_back("barrier", dissemination_barrier(n, bytes(64)));
  if (pow2(n)) {
    schedules.emplace_back("hd-ar", halving_doubling_allreduce(n, buf));
    schedules.emplace_back("swing-ar", swing_allreduce(n, buf));
    schedules.emplace_back("rd-ar", recursive_doubling_allreduce(n, buf));
    schedules.emplace_back("rd-ag", recursive_doubling_allgather(n, buf));
    schedules.emplace_back("binomial-scatter", binomial_scatter(n, 1 % n, buf));
    schedules.emplace_back("binomial-gather", binomial_gather(n, 1 % n, buf));
  }
  for (const auto& [name, sched] : schedules) {
    const std::string what = name + " n=" + std::to_string(n);
    // Masks must match under both init modes the executor supports for
    // arbitrary segment schedules (allgather init needs chunks == n).
    expect_masks_identical(sched, InitMode::kAllReduce, what + " [allreduce-init]");
    if (sched.num_chunks() == n) {
      expect_masks_identical(sched, InitMode::kAllGather, what + " [allgather-init]");
    }
    expect_masks_identical(sched, InitMode::kBroadcast, what + " [broadcast-init]");
    expect_aggregate_demand_identical(sched, what);
  }
}

TEST_P(GoldenP, BlockBuildersMatchExplicitVectorReference) {
  const int n = GetParam();
  const Bytes buf = kib(64 * n);
  {
    const auto sched = alltoall_transpose(n, buf);
    expect_blocks_identical(sched, "a2a-transpose n=" + std::to_string(n));
    expect_aggregate_demand_identical(sched, "a2a-transpose n=" + std::to_string(n));
  }
  if (pow2(n)) {
    const auto sched = alltoall_bruck(n, buf);
    expect_blocks_identical(sched, "a2a-bruck n=" + std::to_string(n));
    expect_aggregate_demand_identical(sched, "a2a-bruck n=" + std::to_string(n));
  }
}

TEST_P(GoldenP, RecursiveExchangeChunkSetsMatchMergeRecursion) {
  const int n = GetParam();
  if (!pow2(n)) return;
  const Bytes buf = kib(64 * n);
  const int q = std::countr_zero(static_cast<unsigned>(n));
  struct Case {
    std::string name;
    PeerFn peers;
  };
  const std::vector<Case> cases = {{"halving-doubling", halving_doubling_peers(n)},
                                   {"swing", swing_peers(n)}};
  for (const auto& [name, peers] : cases) {
    const auto ref = ref_responsibility_sets(n, peers);
    const auto sched = recursive_exchange_allreduce(name, n, buf, peers);
    ASSERT_EQ(sched.num_steps(), 2 * q) << name;
    // RS step s: transfer j → w carries A(w, s+1); AG step t: transfer
    // j → w carries A(j, q−t). Both must equal the merge recursion's sets
    // element-for-element.
    for (int s = 0; s < q; ++s) {
      for (const Transfer& t : sched.step(s).transfers) {
        ASSERT_EQ(t.chunks.to_vector(),
                  ref[static_cast<std::size_t>(s) + 1][static_cast<std::size_t>(t.dst)])
            << name << " n=" << n << " rs-step " << s << " src " << t.src;
      }
    }
    for (int tt = 0; tt < q; ++tt) {
      const int s = q - 1 - tt;
      for (const Transfer& t : sched.step(q + tt).transfers) {
        ASSERT_EQ(t.chunks.to_vector(),
                  ref[static_cast<std::size_t>(s) + 1][static_cast<std::size_t>(t.src)])
            << name << " n=" << n << " ag-step " << tt << " src " << t.src;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GoldenP, ::testing::ValuesIn(kSizes));

}  // namespace
}  // namespace psd::collective
