#include "psd/core/optimizers.hpp"

#include <gtest/gtest.h>

#include "psd/collective/algorithms.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/rng.hpp"

namespace psd::core {
namespace {

using topo::Matching;

CostParams make_params(TimeNs alpha_r) {
  CostParams p;
  p.alpha = nanoseconds(100);
  p.delta = nanoseconds(100);
  p.alpha_r = alpha_r;
  p.b = gbps(800);
  return p;
}

/// Random problem instance over a directed ring: random step matchings and
/// volumes.
ProblemInstance random_instance(int n, int steps, TimeNs alpha_r, psd::Rng& rng,
                                const flow::ThetaOracle& oracle) {
  std::vector<std::pair<Bytes, Matching>> raw;
  for (int i = 0; i < steps; ++i) {
    Matching m(n);
    const auto perm = rng.permutation(n);
    for (int j = 0; j < n; ++j) {
      if (perm[static_cast<std::size_t>(j)] != j) {
        m.set(j, perm[static_cast<std::size_t>(j)]);
      }
    }
    if (m.active_pairs() == 0) m.set(0, 1);
    raw.emplace_back(kib(rng.uniform(1.0, 4096.0)), std::move(m));
  }
  return ProblemInstance(raw, oracle, make_params(alpha_r));
}

TEST(Optimizers, StaticAndBvnAreExtremes) {
  const auto ring = topo::directed_ring(8, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  const auto sched = collective::halving_doubling_allreduce(8, mib(4));
  const ProblemInstance inst(sched, oracle, make_params(microseconds(10)));

  const auto st = static_plan(inst);
  EXPECT_EQ(st.num_reconfigurations, 0);
  EXPECT_DOUBLE_EQ(st.breakdown.reconfiguration.ns(), 0.0);
  for (auto c : st.choice) EXPECT_EQ(c, TopoChoice::kBase);

  const auto bvn = bvn_plan(inst);
  EXPECT_EQ(bvn.num_reconfigurations, inst.num_steps());
  for (auto c : bvn.choice) EXPECT_EQ(c, TopoChoice::kMatched);
}

TEST(Optimizers, BvnReconfigurationCount) {
  // All-matched over s steps: every step pays α_r once (entering step i from
  // step i-1 is never base→base), with no trailing charge: s charges total.
  const auto ring = topo::directed_ring(8, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  const auto sched = collective::alltoall_transpose(8, mib(1));
  const ProblemInstance inst(sched, oracle, make_params(microseconds(1)));
  const auto bvn = bvn_plan(inst);
  EXPECT_EQ(bvn.num_reconfigurations, inst.num_steps());
  EXPECT_DOUBLE_EQ(bvn.breakdown.reconfiguration.us(),
                   static_cast<double>(inst.num_steps()));
}

TEST(Optimizers, DpMatchesBruteForceOnRandomInstances) {
  const auto ring = topo::directed_ring(8, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  psd::Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const auto alpha_r = microseconds(rng.uniform(0.0, 50.0));
    const auto inst = random_instance(8, 10, alpha_r, rng, oracle);
    const auto dp = optimal_plan(inst);
    const auto bf = brute_force_plan(inst);
    EXPECT_NEAR(dp.total_time().ns(), bf.total_time().ns(), 1e-6)
        << "trial " << trial;
  }
}

TEST(Optimizers, DpMatchesBruteForceWithExtensions) {
  const auto ring = topo::directed_ring(8, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  psd::Rng rng(77);
  const photonic::PerPortDelayModel port_model(nanoseconds(500), nanoseconds(200));
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst =
        random_instance(8, 8, microseconds(rng.uniform(0.0, 20.0)), rng, oracle);
    ModelExtensions ext;
    ext.dedup_identical_matchings = (trial % 2 == 0);
    if (trial % 3 == 0) {
      ext.delay_model = &port_model;
      ext.base_config = Matching::rotation(8, 1);
    }
    std::vector<TimeNs> compute;
    for (int i = 0; i < inst.num_steps(); ++i) {
      compute.push_back(microseconds(rng.uniform(0.0, 5.0)));
    }
    ext.compute_before_step = compute;
    const auto dp = optimal_plan(inst, ext);
    const auto bf = brute_force_plan(inst, ext);
    EXPECT_NEAR(dp.total_time().ns(), bf.total_time().ns(), 1e-6)
        << "trial " << trial;
  }
}

TEST(Optimizers, DpNeverWorseThanAnyBaseline) {
  const auto ring = topo::directed_ring(16, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  psd::Rng rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = random_instance(
        16, 14, microseconds(rng.uniform(0.0, 100.0)), rng, oracle);
    const double opt = optimal_plan(inst).total_time().ns();
    EXPECT_LE(opt, static_plan(inst).total_time().ns() + 1e-6);
    EXPECT_LE(opt, bvn_plan(inst).total_time().ns() + 1e-6);
    EXPECT_LE(opt, greedy_threshold_plan(inst).total_time().ns() + 1e-6);
  }
}

TEST(Optimizers, HugeReconfigDelayForcesStatic) {
  const auto ring = topo::directed_ring(8, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  const auto sched = collective::swing_allreduce(8, kib(64));
  const ProblemInstance inst(sched, oracle, make_params(milliseconds(100)));
  const auto dp = optimal_plan(inst);
  const auto st = static_plan(inst);
  EXPECT_NEAR(dp.total_time().ns(), st.total_time().ns(), 1e-6);
  EXPECT_EQ(dp.num_reconfigurations, 0);
}

TEST(Optimizers, FreeReconfigurationForcesMatched) {
  const auto ring = topo::directed_ring(8, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  const auto sched = collective::halving_doubling_allreduce(8, gib(1));
  const ProblemInstance inst(sched, oracle, make_params(nanoseconds(0)));
  const auto dp = optimal_plan(inst);
  // On a directed ring θ ≤ 1 and ℓ ≥ 1: matching every step dominates.
  EXPECT_NEAR(dp.total_time().ns(), bvn_plan(inst).total_time().ns(), 1e-6);
}

TEST(Optimizers, MixedRegimeUsesBothStates) {
  // All-to-All on a ring: early rotations (distance 1-2) are cheap on the
  // base; far rotations are heavily congested and worth a reconfiguration.
  const auto ring = topo::directed_ring(16, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  const auto sched = collective::alltoall_transpose(16, mib(4));
  const ProblemInstance inst(sched, oracle, make_params(microseconds(20)));
  const auto dp = optimal_plan(inst);
  int base_count = 0;
  int matched_count = 0;
  for (auto c : dp.choice) {
    (c == TopoChoice::kBase ? base_count : matched_count)++;
  }
  EXPECT_GT(base_count, 0);
  EXPECT_GT(matched_count, 0);
  EXPECT_LT(dp.total_time().ns(), static_plan(inst).total_time().ns());
  EXPECT_LT(dp.total_time().ns(), bvn_plan(inst).total_time().ns());
}

TEST(Optimizers, GreedyIsFeasibleButMyopic) {
  const auto ring = topo::directed_ring(8, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  psd::Rng rng(555);
  bool saw_gap = false;
  for (int trial = 0; trial < 30; ++trial) {
    const auto inst = random_instance(
        8, 10, microseconds(rng.uniform(1.0, 40.0)), rng, oracle);
    const double greedy = greedy_threshold_plan(inst).total_time().ns();
    const double opt = optimal_plan(inst).total_time().ns();
    EXPECT_GE(greedy, opt - 1e-6);
    if (greedy > opt * 1.001) saw_gap = true;
  }
  EXPECT_TRUE(saw_gap);  // myopia must cost something somewhere
}

TEST(Optimizers, BruteForceRefusesHugeInstances) {
  const auto ring = topo::directed_ring(4, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  std::vector<std::pair<Bytes, Matching>> raw(
      30, {kib(1), Matching::rotation(4, 1)});
  const ProblemInstance inst(raw, oracle, make_params(microseconds(1)));
  EXPECT_THROW((void)brute_force_plan(inst), psd::InvalidArgument);
}

}  // namespace
}  // namespace psd::core
