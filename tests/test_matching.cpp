#include "psd/topo/matching.hpp"

#include <gtest/gtest.h>

#include "psd/util/error.hpp"

namespace psd::topo {
namespace {

TEST(Matching, EmptyMatching) {
  const Matching m(4);
  EXPECT_EQ(m.size(), 4);
  EXPECT_EQ(m.active_pairs(), 0);
  EXPECT_FALSE(m.is_full());
  EXPECT_TRUE(m.is_involution());  // vacuously
  EXPECT_EQ(m.dst_of(0), -1);
  EXPECT_EQ(m.src_of(3), -1);
  EXPECT_TRUE(m.pairs().empty());
}

TEST(Matching, SetAndQuery) {
  Matching m(4);
  m.set(0, 2);
  m.set(2, 0);
  EXPECT_EQ(m.dst_of(0), 2);
  EXPECT_EQ(m.src_of(2), 0);
  EXPECT_EQ(m.active_pairs(), 2);
  EXPECT_TRUE(m.is_involution());
  EXPECT_FALSE(m.is_full());
}

TEST(Matching, RejectsConflicts) {
  Matching m(4);
  m.set(0, 1);
  EXPECT_THROW(m.set(0, 2), psd::InvalidArgument);  // src already sends
  EXPECT_THROW(m.set(2, 1), psd::InvalidArgument);  // dst already receives
  EXPECT_THROW(m.set(3, 3), psd::InvalidArgument);  // self
  EXPECT_THROW(m.set(4, 0), psd::InvalidArgument);  // out of range
}

TEST(Matching, RotationProperties) {
  const Matching r1 = Matching::rotation(6, 1);
  EXPECT_TRUE(r1.is_full());
  EXPECT_FALSE(r1.is_involution());
  for (int j = 0; j < 6; ++j) EXPECT_EQ(r1.dst_of(j), (j + 1) % 6);

  const Matching r3 = Matching::rotation(6, 3);
  EXPECT_TRUE(r3.is_involution());  // distance n/2 pairs up

  const Matching rneg = Matching::rotation(6, -1);
  for (int j = 0; j < 6; ++j) EXPECT_EQ(rneg.dst_of(j), (j + 5) % 6);

  const Matching r0 = Matching::rotation(6, 0);
  EXPECT_EQ(r0.active_pairs(), 0);  // self traffic carries no bytes
  const Matching r6 = Matching::rotation(6, 6);
  EXPECT_EQ(r6.active_pairs(), 0);
}

TEST(Matching, FromPairsAndDestinations) {
  const Matching a = Matching::from_pairs(4, {{0, 3}, {3, 0}, {1, 2}});
  EXPECT_EQ(a.dst_of(1), 2);
  EXPECT_EQ(a.active_pairs(), 3);

  const Matching b = Matching::from_destinations({3, 2, -1, 0});
  EXPECT_EQ(b.dst_of(0), 3);
  EXPECT_EQ(b.dst_of(2), -1);
  EXPECT_EQ(b.active_pairs(), 3);
}

TEST(Matching, MatrixRoundTrip) {
  const Matching m = Matching::from_pairs(4, {{0, 1}, {1, 0}, {2, 3}});
  const psd::Matrix mat = m.to_matrix();
  EXPECT_TRUE(mat.is_sub_permutation());
  EXPECT_DOUBLE_EQ(mat(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(mat(2, 3), 1.0);
  EXPECT_DOUBLE_EQ(mat(3, 2), 0.0);
  const Matching back = Matching::from_matrix(mat);
  EXPECT_TRUE(back == m);
}

TEST(Matching, FromMatrixRejectsNonPermutation) {
  const psd::Matrix bad = psd::Matrix::from_rows({{0.5, 0.5}, {0.5, 0.5}});
  EXPECT_THROW((void)Matching::from_matrix(bad), psd::InvalidArgument);
}

TEST(Matching, PortsChangedCountsBothSides) {
  const Matching a = Matching::rotation(4, 1);
  const Matching b = Matching::rotation(4, 1);
  EXPECT_EQ(a.ports_changed_from(b), 0);

  // Swap two destinations: 0->2, 2->... build explicit.
  const Matching c = Matching::from_pairs(4, {{0, 2}, {1, 3}});
  const Matching d = Matching::from_pairs(4, {{0, 2}, {1, 3}});
  EXPECT_EQ(c.ports_changed_from(d), 0);
  const Matching e = Matching::from_pairs(4, {{0, 3}, {1, 2}});
  // All four nodes change either their send or receive side (or both):
  // sends: 0 and 1 change (2); receives: 2 and 3 change (2).
  EXPECT_EQ(c.ports_changed_from(e), 4);
  // Versus the empty matching: every active endpoint differs.
  EXPECT_EQ(c.ports_changed_from(Matching(4)), 4);
}

TEST(Matching, EqualityComparesStructure) {
  EXPECT_TRUE(Matching::rotation(5, 2) == Matching::rotation(5, 2));
  EXPECT_FALSE(Matching::rotation(5, 2) == Matching::rotation(5, 3));
}

TEST(Matching, HashConsistentWithEquality) {
  // Equal matchings built through different constructors hash identically.
  const Matching a = Matching::rotation(8, 3);
  Matching b(8);
  for (int j = 0; j < 8; ++j) b.set(j, (j + 3) % 8);
  ASSERT_TRUE(a == b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), hash_destinations(a.destinations()));

  // Distinct structures should (overwhelmingly) hash apart.
  for (int k = 1; k < 8; ++k) {
    for (int k2 = k + 1; k2 < 8; ++k2) {
      EXPECT_NE(Matching::rotation(8, k).hash(), Matching::rotation(8, k2).hash())
          << "k=" << k << " k2=" << k2;
    }
  }
  // Idle endpoints participate in the hash (full vs partial differ).
  EXPECT_NE(Matching(4).hash(), Matching::from_pairs(4, {{0, 1}}).hash());
}

TEST(Matching, DestinationsExposesCanonicalKey) {
  const Matching m = Matching::from_pairs(5, {{0, 2}, {3, 1}});
  const std::vector<int> expected{2, -1, -1, 1, -1};
  EXPECT_EQ(m.destinations(), expected);
  // Returned by reference: repeated calls view the same storage (the
  // allocation-free contract the θ-oracle cache relies on).
  EXPECT_EQ(m.destinations().data(), m.destinations().data());
}

}  // namespace
}  // namespace psd::topo
