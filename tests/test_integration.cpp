// Cross-module integration tests: the paper's qualitative claims (§3.4)
// must emerge from the full pipeline — collective generation, θ computation,
// DP optimization, and event-driven simulation.
#include <gtest/gtest.h>

#include "psd/bvn/birkhoff.hpp"
#include "psd/collective/algorithms.hpp"
#include "psd/core/planner.hpp"
#include "psd/sim/flow_sim.hpp"
#include "psd/topo/builders.hpp"

namespace psd {
namespace {

using collective::CollectiveSchedule;
using core::CostParams;
using core::Planner;
using core::TopoChoice;

CostParams paper_params(TimeNs alpha, TimeNs alpha_r) {
  CostParams p;
  p.alpha = alpha;
  p.delta = nanoseconds(100);  // §3.4
  p.alpha_r = alpha_r;
  p.b = gbps(800);             // §3.4
  return p;
}

class RegimeTest : public ::testing::TestWithParam<const char*> {
 public:
  static CollectiveSchedule build(const std::string& algo, int n, Bytes m) {
    if (algo == "hd") return collective::halving_doubling_allreduce(n, m);
    if (algo == "swing") return collective::swing_allreduce(n, m);
    return collective::alltoall_transpose(n, m);
  }
};

TEST_P(RegimeTest, HighReconfigDelaySmallMessagesStayStatic) {
  const int n = 16;
  Planner planner(topo::directed_ring(n, gbps(800)),
                  paper_params(nanoseconds(100), milliseconds(1)));
  const auto r = planner.plan(build(GetParam(), n, kib(16)));
  // OPT collapses to the static schedule and beats naive BvN decisively.
  EXPECT_NEAR(r.optimal.total_time().ns(), r.static_base.total_time().ns(), 1e-6);
  EXPECT_GT(r.speedup_vs_bvn(), 5.0);
}

TEST_P(RegimeTest, LowReconfigDelayLargeMessagesGoAdaptive) {
  const int n = 16;
  Planner planner(topo::directed_ring(n, gbps(800)),
                  paper_params(nanoseconds(100), nanoseconds(100)));
  const auto r = planner.plan(build(GetParam(), n, mib(256)));
  // OPT essentially matches naive BvN (it may shave α_r off steps that are
  // congestion-free on the base, e.g. All-to-All's rotation-1) and beats
  // the static ring decisively.
  EXPECT_LE(r.optimal.total_time().ns(),
            r.naive_bvn.total_time().ns() + 1e-6);
  EXPECT_LT(r.naive_bvn.total_time().ns(),
            r.optimal.total_time().ns() * 1.001);
  EXPECT_GT(r.speedup_vs_static(), 1.5);
  int matched = 0;
  for (auto c : r.optimal.choice) matched += (c == TopoChoice::kMatched);
  EXPECT_GT(matched, static_cast<int>(r.optimal.choice.size()) * 4 / 5);
}

INSTANTIATE_TEST_SUITE_P(Collectives, RegimeTest,
                         ::testing::Values("hd", "swing", "a2a"));

TEST(Regimes, TransitionalRegimeBeatsBothBaselines) {
  // The paper's Figure 2 claim: a band where mixed schedules strictly win.
  const int n = 64;
  Planner planner(topo::directed_ring(n, gbps(800)),
                  paper_params(nanoseconds(100), microseconds(20)));
  bool found_strict_win = false;
  for (double m_mib : {1.0, 4.0, 16.0, 64.0}) {
    const auto r = planner.plan(collective::alltoall_transpose(n, mib(m_mib)));
    if (r.speedup_vs_best_baseline() > 1.05) {
      found_strict_win = true;
      int base = 0;
      int matched = 0;
      for (auto c : r.optimal.choice) {
        (c == TopoChoice::kBase ? base : matched)++;
      }
      EXPECT_GT(base, 0);
      EXPECT_GT(matched, 0);
    }
  }
  EXPECT_TRUE(found_strict_win);
}

TEST(Regimes, OptimalNeverLosesAnywhereOnTheGrid) {
  const int n = 16;
  const auto sched = collective::halving_doubling_allreduce(n, mib(1));
  for (double ar_us : {0.1, 1.0, 10.0, 100.0, 1000.0}) {
    Planner planner(topo::directed_ring(n, gbps(800)),
                    paper_params(nanoseconds(100), microseconds(ar_us)));
    for (double m_kib : {4.0, 64.0, 1024.0, 16384.0}) {
      const auto r = planner.plan(RegimeTest::build("hd", n, kib(m_kib)));
      EXPECT_GE(r.speedup_vs_static(), 1.0 - 1e-9);
      EXPECT_GE(r.speedup_vs_bvn(), 1.0 - 1e-9);
    }
    (void)sched;
  }
}

TEST(Regimes, AlphaDominatesShortMessages) {
  // With α = 10 µs, per-step overhead dwarfs everything for small messages:
  // all schedules converge (speedups → 1), as in Figure 1b's bottom rows.
  const int n = 16;
  Planner planner(topo::directed_ring(n, gbps(800)),
                  paper_params(microseconds(10), nanoseconds(100)));
  const auto r = planner.plan(collective::swing_allreduce(n, kib(4)));
  EXPECT_LT(r.speedup_vs_bvn(), 1.2);
  EXPECT_LT(r.speedup_vs_static(), 1.2);
}

TEST(SimAgreement, OptimalPlanSimulatesToPredictedTime) {
  const int n = 16;
  for (const char* algo : {"hd", "swing", "a2a"}) {
    const auto sched = RegimeTest::build(algo, n, mib(4));
    const auto params = paper_params(nanoseconds(100), microseconds(10));
    Planner planner(topo::directed_ring(n, gbps(800)), params);
    const auto r = planner.plan(sched);

    sim::SimConfig cfg;
    cfg.params = params;
    sim::FlowLevelSimulator simulator(topo::directed_ring(n, gbps(800)),
                                      topo::Matching::rotation(n, 1), cfg);
    const auto sim_res = simulator.run(sched, r.optimal);
    EXPECT_NEAR(sim_res.completion_time.ns(), r.optimal.total_time().ns(),
                1e-6 * r.optimal.total_time().ns())
        << algo;
  }
}

TEST(ObservationOne, CollectiveStepsFormBvnOfAggregate) {
  // Eq. (1): the step sequence is by construction a BvN decomposition of the
  // aggregate demand matrix.
  const auto sched = collective::swing_allreduce(16, mib(1));
  const auto agg = sched.aggregate_demand();
  Matrix reconstructed(16, 16);
  for (const auto& step : sched.steps()) {
    for (const auto& [s, d] : step.matching.pairs()) {
      reconstructed(static_cast<std::size_t>(s), static_cast<std::size_t>(d)) +=
          step.volume.count();
    }
  }
  EXPECT_NEAR(Matrix::max_diff(agg, reconstructed), 0.0, 1e-9);
}

TEST(ObservationOne, AggregateDecompositionLosesTemporalStructure) {
  // The reverse direction fails: Birkhoff on the aggregate of a ring
  // AllReduce compresses 2(n−1) temporally-ordered steps into a single
  // matching — demand-aware scheduling on the aggregate cannot see the
  // dependency chain. This is the paper's core argument for reasoning
  // beyond static demand matrices.
  const int n = 8;
  const auto sched = collective::ring_allreduce(n, mib(1));
  EXPECT_EQ(sched.num_steps(), 2 * (n - 1));
  const auto terms = bvn::birkhoff_decompose(sched.aggregate_demand());
  EXPECT_EQ(terms.size(), 1u);  // one rotation carrying all the volume
}

TEST(EndToEnd, ComposedCollectivePlansAndSimulates) {
  // AllReduce followed by All-to-All (the paper's example of composing
  // collectives) run through planning and simulation.
  const int n = 8;
  const auto composed = collective::halving_doubling_allreduce(n, mib(4))
                            .then(collective::alltoall_transpose(n, mib(4)));
  const auto params = paper_params(nanoseconds(100), microseconds(5));
  Planner planner(topo::directed_ring(n, gbps(800)), params);
  const auto r = planner.plan(composed);
  EXPECT_GE(r.speedup_vs_best_baseline(), 1.0 - 1e-9);

  sim::SimConfig cfg;
  cfg.params = params;
  sim::FlowLevelSimulator simulator(topo::directed_ring(n, gbps(800)),
                                    topo::Matching::rotation(n, 1), cfg);
  const auto sim_res = simulator.run(composed, r.optimal);
  EXPECT_NEAR(sim_res.completion_time.ns(), r.optimal.total_time().ns(),
              1e-6 * r.optimal.total_time().ns());
}

TEST(EndToEnd, BroadcastWithPartialMatchingsPlansAndSimulates) {
  // Binomial broadcast's early steps are *partial* matchings (most nodes
  // idle); the whole pipeline — θ, DP, simulation — must handle them.
  const int n = 16;
  const auto sched = collective::binomial_broadcast(n, 0, mib(64));
  const auto params = paper_params(nanoseconds(100), microseconds(5));
  Planner planner(topo::directed_ring(n, gbps(800)), params);
  const auto r = planner.plan(sched);
  EXPECT_GE(r.speedup_vs_best_baseline(), 1.0 - 1e-9);

  // First step: a single pair => no congestion even on the ring.
  const auto inst = planner.instance(sched);
  EXPECT_DOUBLE_EQ(inst.step(0).theta_base, 1.0);
  // Last step: n/2 parallel pairs spanning half the ring.
  EXPECT_LT(inst.step(sched.num_steps() - 1).theta_base, 1.0);

  sim::SimConfig cfg;
  cfg.params = params;
  sim::FlowLevelSimulator simulator(topo::directed_ring(n, gbps(800)),
                                    topo::Matching::rotation(n, 1), cfg);
  const auto sim_res = simulator.run(sched, r.optimal);
  EXPECT_NEAR(sim_res.completion_time.ns(), r.optimal.total_time().ns(),
              1e-6 * r.optimal.total_time().ns());
}

TEST(EndToEnd, BidirectionalRingBaseUsesExactLp) {
  // A degree-2 base topology exercises the LP/FPTAS path of the oracle in
  // the full planner (no directed-ring closed form applies).
  const int n = 8;
  Planner planner(topo::bidirectional_ring(n, gbps(400)),
                  paper_params(nanoseconds(100), microseconds(1)));
  const auto r = planner.plan(collective::swing_allreduce(n, mib(8)));
  EXPECT_GE(r.speedup_vs_best_baseline(), 1.0 - 1e-9);
  const auto inst = planner.instance(collective::swing_allreduce(n, mib(8)));
  for (int i = 0; i < inst.num_steps(); ++i) {
    EXPECT_GT(inst.step(i).theta_base, 0.0);
    // Both directions available: pairwise exchanges no longer wrap the ring.
    EXPECT_LE(inst.step(i).ell_base, n / 2);
  }
}

TEST(EndToEnd, RingAlgorithmOptimalForShortMessagesUnderHighDelta) {
  // §4 "deeper understanding of the propagation delays": with large δ and
  // small messages, the ring algorithm (θ = 1, ℓ = 1 per step) needs no
  // reconfiguration at all — OPT should keep it fully static.
  const int n = 16;
  CostParams p;
  p.alpha = nanoseconds(100);
  p.delta = microseconds(1);  // high per-hop propagation
  p.alpha_r = microseconds(10);
  p.b = gbps(800);
  Planner planner(topo::directed_ring(n, gbps(800)), p);
  const auto r = planner.plan(collective::ring_allreduce(n, kib(64)));
  EXPECT_EQ(r.optimal.num_reconfigurations, 0);
  EXPECT_NEAR(r.optimal.total_time().ns(), r.static_base.total_time().ns(), 1e-6);
}

}  // namespace
}  // namespace psd
