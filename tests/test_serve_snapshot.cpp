// Persisted plan-memo snapshots: record round-trip, warm restart
// (snapshot → new service → first repeat request is a memo hit with zero
// solves), and rejection of corrupt / truncated / stale-fingerprint
// snapshots — a bad file means a clean cold start, never a crash.
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "psd/serve/service.hpp"
#include "psd/serve/snapshot.hpp"
#include "psd/util/json.hpp"

namespace psd::serve {
namespace {

using namespace std::chrono_literals;

class Capture {
 public:
  void operator()(const std::string& line) {
    auto v = parse_json(line);
    const auto* id = v.find("id");
    const std::lock_guard<std::mutex> lk(mu_);
    by_id_[id != nullptr ? id->as_string() : ""] = std::move(v);
    cv_.notify_all();
  }

  JsonValue wait(const std::string& id,
                 std::chrono::milliseconds timeout = 60'000ms) {
    std::unique_lock<std::mutex> lk(mu_);
    if (!cv_.wait_for(lk, timeout, [&] { return by_id_.count(id) != 0; })) {
      ADD_FAILURE() << "no response for " << id;
      return JsonValue{};
    }
    return by_id_[id];
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, JsonValue> by_id_;
};

std::string cheap_plan(const std::string& id, int salt = 0) {
  return R"({"op":"plan","id":")" + id +
         R"(","topology":"ring","nodes":8,"collective":"allreduce:ring",)" +
         R"("message_bytes":)" + std::to_string(1048576 + salt) + "}";
}

std::string ring_delta(const std::string& id, int src, int dst) {
  return R"({"op":"delta","id":")" + id +
         R"(","topology":"ring","nodes":8,"ops":[{"kind":"scale_capacity",)" +
         R"("src":)" + std::to_string(src) + R"(,"dst":)" +
         std::to_string(dst) + R"(,"factor":0.5}]})";
}

/// Unique-per-test temp path, removed on destruction.
class TempPath {
 public:
  explicit TempPath(const std::string& stem) {
    path_ = testing::TempDir() + stem + "-" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".jsonl";
    std::remove(path_.c_str());
  }
  ~TempPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string l; std::getline(in, l);) lines.push_back(l);
  return lines;
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  for (const auto& l : lines) out << l << '\n';
}

// ---- Record round-trip ---------------------------------------------------

TEST(MemoSnapshotFormat, RecordRoundTripsBitExactly) {
  MemoSnapshotRecord rec;
  rec.plan = parse_request(cheap_plan("x", 7)).plan;
  rec.answer.steps = 14;
  rec.answer.optimal_ns = 123456.78901234567;
  rec.answer.static_ns = 3.0000000000000004;
  rec.answer.naive_bvn_ns = 1e300;
  rec.answer.greedy_ns = 0.1;
  rec.answer.reconfigurations = 3;
  rec.answer.speedup_vs_static = 1.9999999999999998;
  rec.answer.speedup_vs_bvn = 2.5;
  rec.answer.pipelined_ns = 99999.99999999999;
  rec.answer.pipeline_chunks = 4;
  rec.answer.chosen_algo = "ring";
  rec.epoch = 12;
  rec.fingerprint = 0xDEADBEEFCAFEF00DULL;

  const auto back = memo_record_from_json(memo_record_to_json(rec));
  EXPECT_EQ(back.epoch, rec.epoch);
  EXPECT_EQ(back.fingerprint, rec.fingerprint);
  EXPECT_EQ(back.plan.nodes, rec.plan.nodes);
  EXPECT_EQ(back.plan.message.count(), rec.plan.message.count());
  EXPECT_EQ(back.answer.steps, rec.answer.steps);
  // %.17g: doubles survive the text round trip bit-exactly.
  EXPECT_EQ(back.answer.optimal_ns, rec.answer.optimal_ns);
  EXPECT_EQ(back.answer.static_ns, rec.answer.static_ns);
  EXPECT_EQ(back.answer.naive_bvn_ns, rec.answer.naive_bvn_ns);
  EXPECT_EQ(back.answer.speedup_vs_static, rec.answer.speedup_vs_static);
  EXPECT_EQ(back.answer.pipelined_ns, rec.answer.pipelined_ns);
  EXPECT_EQ(back.answer.pipeline_chunks, rec.answer.pipeline_chunks);
  EXPECT_EQ(back.answer.chosen_algo, rec.answer.chosen_algo);
}

TEST(MemoSnapshotFormat, HeaderRoundTripAndRejections) {
  EXPECT_TRUE(parse_memo_snapshot_header(memo_snapshot_header()));
  EXPECT_FALSE(parse_memo_snapshot_header(""));
  EXPECT_FALSE(parse_memo_snapshot_header("not json"));
  EXPECT_FALSE(parse_memo_snapshot_header(R"({"format":"other","version":1})"));
  EXPECT_FALSE(
      parse_memo_snapshot_header(R"({"format":"psd-serve-memo","version":99})"));
  EXPECT_FALSE(parse_memo_snapshot_header(R"({"version":1})"));
}

TEST(MemoSnapshotFormat, MalformedRecordsThrow) {
  EXPECT_THROW((void)memo_record_from_json("garbage"), Error);
  EXPECT_THROW((void)memo_record_from_json("{}"), Error);
  // Valid plan fields but no answer / fingerprint.
  const std::string plan_only =
      R"({"topology":"ring","nodes":8,"collective":"allreduce:ring",)"
      R"("message_bytes":1048576,"epoch":0})";
  EXPECT_THROW((void)memo_record_from_json(plan_only), Error);
  // Fingerprint of the wrong shape.
  MemoSnapshotRecord rec;
  rec.plan = parse_request(cheap_plan("x")).plan;
  std::string line = memo_record_to_json(rec);
  const auto pos = line.find("\"fingerprint\":\"");
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, std::string("\"fingerprint\":\"").size() + 16,
               "\"fingerprint\":\"YOLO\"");
  EXPECT_THROW((void)memo_record_from_json(line), Error);
}

// ---- Save / load round trip ---------------------------------------------

TEST(MemoSnapshot, SaveThenLoadAnswersWarm) {
  TempPath snap("serve-memo-warm");
  JsonValue first;
  {
    Capture cap;
    ServiceOptions opts;
    opts.workers = 1;
    PlanService svc(opts, std::ref(cap));
    svc.submit_line(cheap_plan("a", 0));
    svc.submit_line(cheap_plan("b", 9));
    first = cap.wait("a");
    ASSERT_EQ(first.find("code")->as_string(), "OK");
    (void)cap.wait("b");
    svc.drain();
    EXPECT_EQ(svc.save_memo_snapshot(snap.str()), 2);
  }
  ASSERT_EQ(read_lines(snap.str()).size(), 3u);  // header + 2 records

  // Restart: the snapshot is loaded at construction; the first repeat
  // request is a fresh memo hit — zero solves, degraded:false.
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.memo_snapshot_path = snap.str();
  PlanService svc(opts, std::ref(cap));
  const auto st = svc.stats();
  EXPECT_EQ(st.memo_loaded, 2u);
  EXPECT_EQ(st.memo_load_errors, 0u);
  EXPECT_EQ(st.memo_load_rejected, 0u);

  svc.submit_line(cheap_plan("a2", 0));
  const auto warm = cap.wait("a2");
  ASSERT_EQ(warm.find("code")->as_string(), "OK");
  EXPECT_TRUE(warm.find("cached")->as_bool());
  EXPECT_FALSE(warm.find("degraded")->as_bool());
  // Bit-exact across the restart (answers were persisted with %.17g).
  EXPECT_EQ(warm.find("optimal_ns")->as_number(),
            first.find("optimal_ns")->as_number());
  EXPECT_EQ(warm.find("pipelined_ns")->as_number(),
            first.find("pipelined_ns")->as_number());
  EXPECT_EQ(svc.stats().planned, 0u) << "warm hit must not solve";
}

TEST(MemoSnapshot, ShutdownWritesSnapshotAutomatically) {
  TempPath snap("serve-memo-auto");
  {
    Capture cap;
    ServiceOptions opts;
    opts.workers = 1;
    opts.memo_snapshot_path = snap.str();  // missing file: silent cold start
    PlanService svc(opts, std::ref(cap));
    EXPECT_EQ(svc.stats().memo_load_errors, 0u);
    svc.submit_line(cheap_plan("a"));
    (void)cap.wait("a");
    svc.drain();
    svc.shutdown();  // writes the snapshot
    EXPECT_GE(svc.stats().memo_snapshots, 1u);
  }
  const auto lines = read_lines(snap.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(parse_memo_snapshot_header(lines[0]));
  EXPECT_NO_THROW((void)memo_record_from_json(lines[1]));
}

TEST(MemoSnapshot, StaleEntriesAreNotWritten) {
  // An entry made stale by a delta is degradation fodder in RAM but must
  // not be persisted: a restart rebuilds the pristine topology, for which
  // that answer is neither fresh nor provably right.
  TempPath snap("serve-memo-stale");
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.replan_on_delta = false;  // keep the entry stale
  PlanService svc(opts, std::ref(cap));
  svc.submit_line(cheap_plan("a"));
  (void)cap.wait("a");
  svc.drain();
  svc.submit_line(ring_delta("d", 2, 3));
  (void)cap.wait("d");
  EXPECT_EQ(svc.save_memo_snapshot(snap.str()), 0);
  EXPECT_EQ(read_lines(snap.str()).size(), 1u);  // header only
}

// ---- Rejection paths -----------------------------------------------------

TEST(MemoSnapshot, CorruptHeaderMeansCleanColdStart) {
  TempPath snap("serve-memo-corrupt-header");
  write_lines(snap.str(), {"this is not a snapshot", "nor is this"});
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.memo_snapshot_path = snap.str();
  PlanService svc(opts, std::ref(cap));
  const auto st = svc.stats();
  EXPECT_EQ(st.memo_loaded, 0u);
  EXPECT_EQ(st.memo_load_errors, 1u);
  // Daemon is alive and cold: the request solves instead of hitting.
  svc.submit_line(cheap_plan("a"));
  const auto r = cap.wait("a");
  ASSERT_EQ(r.find("code")->as_string(), "OK");
  EXPECT_FALSE(r.find("cached")->as_bool());
}

TEST(MemoSnapshot, TruncatedAndCorruptRecordsAreSkipped) {
  TempPath snap("serve-memo-truncated");
  // Build a real snapshot, then mangle it: keep the header and one good
  // record, add a corrupt record and a truncated last line (no newline,
  // cut mid-JSON — exactly what a crash mid-append would leave).
  {
    Capture cap;
    ServiceOptions opts;
    opts.workers = 1;
    PlanService svc(opts, std::ref(cap));
    svc.submit_line(cheap_plan("a", 0));
    (void)cap.wait("a");
    svc.drain();
    ASSERT_EQ(svc.save_memo_snapshot(snap.str()), 1);
  }
  auto lines = read_lines(snap.str());
  ASSERT_EQ(lines.size(), 2u);
  {
    std::ofstream out(snap.str(), std::ios::trunc);
    out << lines[0] << '\n'
        << lines[1] << '\n'
        << R"({"topology":"ring","nodes":"eight"})" << '\n'
        << lines[1].substr(0, lines[1].size() / 2);  // truncated, no '\n'
  }
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.memo_snapshot_path = snap.str();
  PlanService svc(opts, std::ref(cap));
  const auto st = svc.stats();
  EXPECT_EQ(st.memo_loaded, 1u) << "the good record is kept";
  EXPECT_EQ(st.memo_load_errors, 2u) << "corrupt + truncated each counted";
  svc.submit_line(cheap_plan("a", 0));
  EXPECT_TRUE(cap.wait("a").find("cached")->as_bool());
}

TEST(MemoSnapshot, StaleFingerprintIsRejected) {
  TempPath snap("serve-memo-stale-fp");
  {
    Capture cap;
    ServiceOptions opts;
    opts.workers = 1;
    PlanService svc(opts, std::ref(cap));
    svc.submit_line(cheap_plan("a"));
    (void)cap.wait("a");
    svc.drain();
    ASSERT_EQ(svc.save_memo_snapshot(snap.str()), 1);
  }
  // Flip one fingerprint hex digit: the record no longer matches the
  // pristine rebuild and must be rejected (not served, not crashed on).
  auto lines = read_lines(snap.str());
  ASSERT_EQ(lines.size(), 2u);
  const auto pos = lines[1].find("\"fingerprint\":\"");
  ASSERT_NE(pos, std::string::npos);
  const auto digit = pos + std::string("\"fingerprint\":\"").size();
  lines[1][digit] = lines[1][digit] == '0' ? '1' : '0';
  write_lines(snap.str(), lines);

  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.memo_snapshot_path = snap.str();
  PlanService svc(opts, std::ref(cap));
  const auto st = svc.stats();
  EXPECT_EQ(st.memo_loaded, 0u);
  EXPECT_EQ(st.memo_load_rejected, 1u);
  EXPECT_EQ(st.memo_load_errors, 0u);
  svc.submit_line(cheap_plan("a"));
  const auto r = cap.wait("a");
  ASSERT_EQ(r.find("code")->as_string(), "OK");
  EXPECT_FALSE(r.find("cached")->as_bool()) << "rejected entry must re-solve";
}

TEST(MemoSnapshot, PeriodicSnapshotsFromWatchdog) {
  TempPath snap("serve-memo-periodic");
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.watchdog_interval = 5ms;
  opts.memo_snapshot_path = snap.str();
  opts.memo_snapshot_interval = 50ms;
  PlanService svc(opts, std::ref(cap));
  svc.submit_line(cheap_plan("a"));
  (void)cap.wait("a");
  svc.drain();
  std::this_thread::sleep_for(250ms);
  EXPECT_GE(svc.stats().memo_snapshots, 1u);
  const auto lines = read_lines(snap.str());
  ASSERT_GE(lines.size(), 2u);
  EXPECT_TRUE(parse_memo_snapshot_header(lines[0]));
}

}  // namespace
}  // namespace psd::serve
