// Crash-consistent memo journal: record/frame/header round-trips, the
// torn-write taxonomy (mid-record truncation, duplicated tail bytes,
// valid header with zero records), generation compaction bounding the
// disk, and PlanService warm restarts through the journal — a restarted
// daemon answers every committed plan key warm, and a mangled journal
// means a clean cold start, never a crash.
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "psd/serve/service.hpp"
#include "psd/serve/snapshot.hpp"
#include "psd/util/fault_injection.hpp"
#include "psd/util/json.hpp"

namespace psd::serve {
namespace {

using namespace std::chrono_literals;

class Capture {
 public:
  void operator()(const std::string& line) {
    auto v = parse_json(line);
    const auto* id = v.find("id");
    const std::lock_guard<std::mutex> lk(mu_);
    by_id_[id != nullptr ? id->as_string() : ""] = std::move(v);
    cv_.notify_all();
  }

  JsonValue wait(const std::string& id,
                 std::chrono::milliseconds timeout = 60'000ms) {
    std::unique_lock<std::mutex> lk(mu_);
    if (!cv_.wait_for(lk, timeout, [&] { return by_id_.count(id) != 0; })) {
      ADD_FAILURE() << "no response for " << id;
      return JsonValue{};
    }
    return by_id_[id];
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, JsonValue> by_id_;
};

std::string cheap_plan(const std::string& id, int salt = 0) {
  return R"({"op":"plan","id":")" + id +
         R"(","topology":"ring","nodes":8,"collective":"allreduce:ring",)" +
         R"("message_bytes":)" + std::to_string(1048576 + salt) + "}";
}

std::string ring_delta(const std::string& id, int src, int dst) {
  return R"({"op":"delta","id":")" + id +
         R"(","topology":"ring","nodes":8,"ops":[{"kind":"scale_capacity",)" +
         R"("src":)" + std::to_string(src) + R"(,"dst":)" +
         std::to_string(dst) + R"(,"factor":0.5}]})";
}

/// Unique-per-test journal base path; removes the whole generation family
/// (<base>.gNNNNNN and stray .tmp files) on construction and destruction.
class TempJournal {
 public:
  explicit TempJournal(const std::string& stem) {
    base_ = testing::TempDir() + stem + "-" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    remove_family();
  }
  ~TempJournal() { remove_family(); }
  [[nodiscard]] const std::string& str() const { return base_; }

  /// Generation files on disk, oldest first (via a throwaway journal).
  [[nodiscard]] std::vector<std::string> files() const {
    return MemoJournal(base_, {}).generation_files();
  }
  [[nodiscard]] std::string newest_file() const {
    const auto f = files();
    EXPECT_FALSE(f.empty()) << "no generation file under " << base_;
    return f.empty() ? std::string() : f.back();
  }

 private:
  void remove_family() const {
    namespace fs = std::filesystem;
    const fs::path base(base_);
    const std::string prefix = base.filename().string();
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(
             base.parent_path().empty() ? "." : base.parent_path(), ec)) {
      const std::string name = entry.path().filename().string();
      if (name.compare(0, prefix.size(), prefix) == 0) {
        fs::remove(entry.path(), ec);
      }
    }
  }

  std::string base_;
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> lines;
  for (std::string l; std::getline(in, l);) lines.push_back(l);
  return lines;
}

void write_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << bytes;
}

std::string read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

MemoSnapshotRecord sample_record(int salt = 0) {
  MemoSnapshotRecord rec;
  rec.plan = parse_request(cheap_plan("x", salt)).plan;
  rec.answer.steps = 7 + salt;
  rec.answer.optimal_ns = 1000.5 + salt;
  rec.answer.static_ns = 2000.25;
  rec.answer.naive_bvn_ns = 3000.0;
  rec.answer.greedy_ns = 1500.0;
  rec.answer.reconfigurations = 2;
  rec.answer.speedup_vs_static = 1.5;
  rec.answer.speedup_vs_bvn = 2.0;
  rec.answer.pipelined_ns = 900.125;
  rec.answer.pipeline_chunks = 4;
  rec.answer.chosen_algo = "ring";
  rec.epoch = 0;
  rec.fingerprint = 0x0123456789abcdefULL + static_cast<std::uint64_t>(salt);
  return rec;
}

std::string framed_line(const MemoSnapshotRecord& rec) {
  return journal_frame_record(memo_record_to_json(rec)) + "\n";
}

// ---- Record / header / frame codec ---------------------------------------

TEST(MemoJournalFormat, RecordRoundTripsBitExactly) {
  MemoSnapshotRecord rec;
  rec.plan = parse_request(cheap_plan("x", 7)).plan;
  rec.answer.steps = 14;
  rec.answer.optimal_ns = 123456.78901234567;
  rec.answer.static_ns = 3.0000000000000004;
  rec.answer.naive_bvn_ns = 1e300;
  rec.answer.greedy_ns = 0.1;
  rec.answer.reconfigurations = 3;
  rec.answer.speedup_vs_static = 1.9999999999999998;
  rec.answer.speedup_vs_bvn = 2.5;
  rec.answer.pipelined_ns = 99999.99999999999;
  rec.answer.pipeline_chunks = 4;
  rec.answer.chosen_algo = "ring";
  rec.epoch = 12;
  rec.fingerprint = 0xDEADBEEFCAFEF00DULL;

  const auto back = memo_record_from_json(memo_record_to_json(rec));
  EXPECT_EQ(back.epoch, rec.epoch);
  EXPECT_EQ(back.fingerprint, rec.fingerprint);
  EXPECT_EQ(back.plan.nodes, rec.plan.nodes);
  EXPECT_EQ(back.plan.message.count(), rec.plan.message.count());
  EXPECT_EQ(back.answer.steps, rec.answer.steps);
  // %.17g: doubles survive the text round trip bit-exactly.
  EXPECT_EQ(back.answer.optimal_ns, rec.answer.optimal_ns);
  EXPECT_EQ(back.answer.static_ns, rec.answer.static_ns);
  EXPECT_EQ(back.answer.naive_bvn_ns, rec.answer.naive_bvn_ns);
  EXPECT_EQ(back.answer.speedup_vs_static, rec.answer.speedup_vs_static);
  EXPECT_EQ(back.answer.pipelined_ns, rec.answer.pipelined_ns);
  EXPECT_EQ(back.answer.pipeline_chunks, rec.answer.pipeline_chunks);
  EXPECT_EQ(back.answer.chosen_algo, rec.answer.chosen_algo);
}

TEST(MemoJournalFormat, MalformedRecordsThrow) {
  EXPECT_THROW((void)memo_record_from_json("garbage"), Error);
  EXPECT_THROW((void)memo_record_from_json("{}"), Error);
  // Valid plan fields but no answer / fingerprint.
  const std::string plan_only =
      R"({"topology":"ring","nodes":8,"collective":"allreduce:ring",)"
      R"("message_bytes":1048576,"epoch":0})";
  EXPECT_THROW((void)memo_record_from_json(plan_only), Error);
  // Fingerprint of the wrong shape.
  MemoSnapshotRecord rec;
  rec.plan = parse_request(cheap_plan("x")).plan;
  std::string line = memo_record_to_json(rec);
  const auto pos = line.find("\"fingerprint\":\"");
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, std::string("\"fingerprint\":\"").size() + 16,
               "\"fingerprint\":\"YOLO\"");
  EXPECT_THROW((void)memo_record_from_json(line), Error);
}

TEST(MemoJournalFormat, HeaderRoundTripAndRejections) {
  std::uint64_t gen = 0;
  EXPECT_TRUE(parse_journal_header(journal_header(3), &gen));
  EXPECT_EQ(gen, 3u);
  EXPECT_FALSE(parse_journal_header(""));
  EXPECT_FALSE(parse_journal_header("not json"));
  EXPECT_FALSE(parse_journal_header(
      R"({"format":"other","version":2,"generation":1})"));
  EXPECT_FALSE(parse_journal_header(
      R"({"format":"psd-serve-journal","version":99,"generation":1})"));
  EXPECT_FALSE(
      parse_journal_header(R"({"format":"psd-serve-journal","version":2})"));
  EXPECT_FALSE(parse_journal_header(
      R"({"format":"psd-serve-journal","version":2,"generation":0})"));
}

TEST(MemoJournalFormat, FrameCarriesCrcAndLength) {
  // CRC32 (IEEE, reflected) check value — pins the polynomial.
  EXPECT_EQ(crc32_ieee("123456789"), 0xCBF43926u);
  const std::string frame = journal_frame_record("hello");
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof crc_hex, "%08x", crc32_ieee("hello"));
  EXPECT_EQ(frame, std::string(crc_hex) + " 5 hello");
}

// ---- MemoJournal: load / append / torn-write taxonomy --------------------

TEST(MemoJournalFile, ColdStartThenAppendCreatesGenerationOne) {
  TempJournal tj("journal-cold");
  {
    MemoJournal j(tj.str(), {});
    const auto loaded = j.load();
    EXPECT_TRUE(loaded.records.empty());
    EXPECT_EQ(loaded.generation, 0u);
    EXPECT_EQ(loaded.truncated_tail, 0u);
    EXPECT_EQ(loaded.errors, 0u);
    EXPECT_TRUE(j.append(sample_record(1)));
    EXPECT_EQ(j.generation(), 1u);
    EXPECT_EQ(j.appends(), 1u);
  }
  ASSERT_EQ(tj.files().size(), 1u);
  MemoJournal j2(tj.str(), {});
  const auto loaded = j2.load();
  EXPECT_EQ(loaded.generation, 1u);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].answer.steps, sample_record(1).answer.steps);
}

TEST(MemoJournalFile, TornTailMidRecordIsTruncatedPrefixKept) {
  TempJournal tj("journal-torn-mid");
  const std::string path = tj.str() + ".g000001";
  const std::string good = framed_line(sample_record(1));
  const std::string torn = framed_line(sample_record(2));
  // A crash mid-append: half of the second record reached the disk.
  write_raw(path, journal_header(1) + "\n" + good +
                      torn.substr(0, torn.size() / 2));

  MemoJournal j(tj.str(), {});
  const auto loaded = j.load();
  EXPECT_EQ(loaded.truncated_tail, 1u);
  EXPECT_EQ(loaded.errors, 0u);
  ASSERT_EQ(loaded.records.size(), 1u) << "the committed prefix is kept";
  EXPECT_EQ(loaded.records[0].answer.steps, sample_record(1).answer.steps);
  // The torn bytes were physically dropped: appends resume on a record
  // boundary and a reload sees both the old and the new record.
  EXPECT_EQ(read_raw(path).size(), (journal_header(1) + "\n" + good).size());
  EXPECT_TRUE(j.append(sample_record(3)));
  MemoJournal j2(tj.str(), {});
  EXPECT_EQ(j2.load().records.size(), 2u);
}

TEST(MemoJournalFile, TornTailDuplicatedBytesAreDropped) {
  TempJournal tj("journal-torn-dup");
  const std::string path = tj.str() + ".g000001";
  const std::string good = framed_line(sample_record(1));
  // A rewrite glitch duplicated the record's last bytes after its newline:
  // the stray tail is a line that can never frame-check.
  write_raw(path, journal_header(1) + "\n" + good +
                      good.substr(good.size() / 2));

  MemoJournal j(tj.str(), {});
  const auto loaded = j.load();
  EXPECT_EQ(loaded.truncated_tail, 1u);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(read_raw(path).size(), (journal_header(1) + "\n" + good).size());
}

TEST(MemoJournalFile, ValidHeaderWithZeroRecordsLoadsClean) {
  TempJournal tj("journal-empty");
  write_raw(tj.str() + ".g000004", journal_header(4) + "\n");
  MemoJournal j(tj.str(), {});
  const auto loaded = j.load();
  EXPECT_TRUE(loaded.records.empty());
  EXPECT_EQ(loaded.generation, 4u);
  EXPECT_EQ(loaded.truncated_tail, 0u);
  EXPECT_EQ(loaded.errors, 0u);
  EXPECT_TRUE(j.append(sample_record(1)));
  EXPECT_EQ(j.generation(), 4u) << "appends continue the loaded generation";
}

TEST(MemoJournalFile, CorruptPayloadInsideValidFrameIsSkippedNotTorn) {
  TempJournal tj("journal-badjson");
  // A checksummed frame whose payload is not a record: file corruption,
  // not a tear — skip it, keep trusting what follows.
  write_raw(tj.str() + ".g000001",
            journal_header(1) + "\n" + framed_line(sample_record(1)) +
                journal_frame_record("{\"not\":\"a record\"}") + "\n" +
                framed_line(sample_record(2)));
  MemoJournal j(tj.str(), {});
  const auto loaded = j.load();
  EXPECT_EQ(loaded.errors, 1u);
  EXPECT_EQ(loaded.truncated_tail, 0u);
  ASSERT_EQ(loaded.records.size(), 2u);
  EXPECT_EQ(loaded.records[1].answer.steps, sample_record(2).answer.steps);
}

TEST(MemoJournalFile, UnreadableNewestHeaderFallsBackOneGeneration) {
  TempJournal tj("journal-fallback");
  write_raw(tj.str() + ".g000001",
            journal_header(1) + "\n" + framed_line(sample_record(1)));
  write_raw(tj.str() + ".g000002", "this is not a journal\n");
  MemoJournal j(tj.str(), {});
  const auto loaded = j.load();
  EXPECT_EQ(loaded.errors, 1u) << "the unreadable newest header is counted";
  EXPECT_EQ(loaded.generation, 1u);
  ASSERT_EQ(loaded.records.size(), 1u);
}

TEST(MemoJournalFile, CompactionRotatesGenerationsAndBoundsDisk) {
  TempJournal tj("journal-compact");
  MemoJournalOptions opts;
  opts.compact_records = 2;
  opts.keep_generations = 2;
  MemoJournal j(tj.str(), opts);
  (void)j.load();
  EXPECT_TRUE(j.append(sample_record(1)));
  EXPECT_FALSE(j.wants_compaction());
  EXPECT_TRUE(j.append(sample_record(2)));
  EXPECT_TRUE(j.wants_compaction());

  // Several compaction rounds: the generation advances, the live set is
  // rewritten whole, and the on-disk family never exceeds keep_generations.
  for (int round = 0; round < 4; ++round) {
    EXPECT_TRUE(j.compact({sample_record(1), sample_record(2)}));
    EXPECT_FALSE(j.wants_compaction());
    EXPECT_LE(tj.files().size(), opts.keep_generations);
  }
  EXPECT_EQ(j.compactions(), 4u);
  EXPECT_EQ(j.generation(), 5u);

  MemoJournal j2(tj.str(), {});
  const auto loaded = j2.load();
  EXPECT_EQ(loaded.generation, 5u);
  EXPECT_EQ(loaded.records.size(), 2u);
  EXPECT_EQ(loaded.truncated_tail, 0u);
}

TEST(MemoJournalFile, InjectedTornAppendWedgesUntilCompactionHeals) {
  TempJournal tj("journal-wedge");
  util::FaultInjector fault(42);
  fault.arm("journal.append.torn", {.after = 1, .budget = 1});
  MemoJournalOptions opts;
  opts.fault = &fault;
  MemoJournal j(tj.str(), opts);
  (void)j.load();
  EXPECT_TRUE(j.append(sample_record(1)));
  EXPECT_FALSE(j.append(sample_record(2))) << "second append tears";
  EXPECT_EQ(fault.fires("journal.append.torn"), 1u);
  EXPECT_TRUE(j.wants_compaction()) << "a torn write wedges the journal";
  EXPECT_FALSE(j.append(sample_record(3))) << "wedged: nothing lands";

  // Exactly what a crashed process leaves: record 1 committed, half of
  // record 2 on disk. A loader keeps the prefix.
  {
    MemoJournal probe(tj.str(), {});
    const auto loaded = probe.load();
    EXPECT_EQ(loaded.truncated_tail, 1u);
    EXPECT_EQ(loaded.records.size(), 1u);
  }

  EXPECT_TRUE(j.compact({sample_record(1)})) << "compaction rotates + heals";
  EXPECT_TRUE(j.append(sample_record(4)));
  MemoJournal j2(tj.str(), {});
  EXPECT_EQ(j2.load().records.size(), 2u);
}

// ---- PlanService integration ---------------------------------------------

TEST(MemoJournalService, WarmRestartAnswersCommittedKeysCached) {
  TempJournal tj("serve-journal-warm");
  JsonValue first;
  {
    Capture cap;
    ServiceOptions opts;
    opts.workers = 1;
    opts.memo_journal_path = tj.str();
    PlanService svc(opts, std::ref(cap));
    svc.submit_line(cheap_plan("a", 0));
    svc.submit_line(cheap_plan("b", 9));
    first = cap.wait("a");
    ASSERT_EQ(first.find("code")->as_string(), "OK");
    (void)cap.wait("b");
    svc.drain();
  }  // ~PlanService: shutdown, final compaction
  ASSERT_FALSE(tj.files().empty());

  // Restart: the journal replays at construction; the first repeat
  // request is a fresh memo hit — zero solves, degraded:false.
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.memo_journal_path = tj.str();
  PlanService svc(opts, std::ref(cap));
  const auto st = svc.stats();
  EXPECT_EQ(st.memo_loaded, 2u);
  EXPECT_EQ(st.memo_load_errors, 0u);
  EXPECT_EQ(st.memo_load_rejected, 0u);
  EXPECT_EQ(st.journal_truncated_tail, 0u);

  svc.submit_line(cheap_plan("a2", 0));
  const auto warm = cap.wait("a2");
  ASSERT_EQ(warm.find("code")->as_string(), "OK");
  EXPECT_TRUE(warm.find("cached")->as_bool());
  EXPECT_FALSE(warm.find("degraded")->as_bool());
  // Bit-exact across the restart (answers are persisted with %.17g).
  EXPECT_EQ(warm.find("optimal_ns")->as_number(),
            first.find("optimal_ns")->as_number());
  EXPECT_EQ(warm.find("pipelined_ns")->as_number(),
            first.find("pipelined_ns")->as_number());
  EXPECT_EQ(svc.stats().planned, 0u) << "warm hit must not solve";
}

TEST(MemoJournalService, AnswersAreDurableBeforeShutdown) {
  // The kill -9 property: once the answer is out, its record is on disk —
  // no shutdown hook involved.
  TempJournal tj("serve-journal-durable");
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.memo_journal_path = tj.str();
  PlanService svc(opts, std::ref(cap));
  svc.submit_line(cheap_plan("a"));
  ASSERT_EQ(cap.wait("a").find("code")->as_string(), "OK");
  svc.drain();
  ASSERT_NE(svc.journal(), nullptr);
  // The append happens just after the answer is emitted; give it a beat.
  for (int i = 0; i < 200 && svc.journal()->appends() == 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(svc.journal()->appends(), 1u);

  const auto lines = read_lines(tj.newest_file());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(parse_journal_header(lines[0]));
  // The record line frames and checks out, while the daemon still runs.
  const auto sp2 = lines[1].find(' ', 9);
  ASSERT_NE(sp2, std::string::npos);
  const std::string payload = lines[1].substr(sp2 + 1);
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof crc_hex, "%08x", crc32_ieee(payload));
  EXPECT_EQ(lines[1].substr(0, 8), std::string(crc_hex));
  EXPECT_NO_THROW((void)memo_record_from_json(payload));
}

TEST(MemoJournalService, StaleEntriesAreCompactedAway) {
  // An entry made stale by a delta is degradation fodder in RAM but must
  // not survive a compaction: a restart rebuilds the pristine topology,
  // for which that answer is neither fresh nor provably right.
  TempJournal tj("serve-journal-stale");
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.replan_on_delta = false;  // keep the entry stale
  opts.memo_journal_path = tj.str();
  PlanService svc(opts, std::ref(cap));
  svc.submit_line(cheap_plan("a"));
  (void)cap.wait("a");
  svc.drain();
  // The append lands just after the answer is emitted; let it settle so
  // the delta below is ordered after it (not racing the worker thread).
  ASSERT_NE(svc.journal(), nullptr);
  for (int i = 0; i < 200 && svc.journal()->appends() == 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_EQ(svc.journal()->appends(), 1u);
  svc.submit_line(ring_delta("d", 2, 3));
  (void)cap.wait("d");
  ASSERT_TRUE(svc.compact_journal());
  EXPECT_GE(svc.stats().memo_snapshots, 1u);

  MemoJournal probe(tj.str(), {});
  EXPECT_TRUE(probe.load().records.empty()) << "stale entries not persisted";
}

TEST(MemoJournalService, StaleFingerprintIsRejectedOnReplay) {
  TempJournal tj("serve-journal-stale-fp");
  {
    Capture cap;
    ServiceOptions opts;
    opts.workers = 1;
    opts.memo_journal_path = tj.str();
    PlanService svc(opts, std::ref(cap));
    svc.submit_line(cheap_plan("a"));
    (void)cap.wait("a");
    svc.drain();
  }
  // Flip one fingerprint hex digit and re-frame (the CRC must still pass:
  // this models a *committed* record for a different topology, not a torn
  // one). The record no longer matches the pristine rebuild and must be
  // rejected — not served, not crashed on.
  const std::string path = tj.newest_file();
  auto lines = read_lines(path);
  ASSERT_GE(lines.size(), 2u);
  const auto sp2 = lines[1].find(' ', 9);
  ASSERT_NE(sp2, std::string::npos);
  std::string payload = lines[1].substr(sp2 + 1);
  const auto pos = payload.find("\"fingerprint\":\"");
  ASSERT_NE(pos, std::string::npos);
  const auto digit = pos + std::string("\"fingerprint\":\"").size();
  payload[digit] = payload[digit] == '0' ? '1' : '0';
  std::string content = lines[0] + "\n";
  content += journal_frame_record(payload) + "\n";
  for (std::size_t i = 2; i < lines.size(); ++i) content += lines[i] + "\n";
  write_raw(path, content);

  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.memo_journal_path = tj.str();
  PlanService svc(opts, std::ref(cap));
  const auto st = svc.stats();
  EXPECT_EQ(st.memo_loaded, 0u);
  EXPECT_EQ(st.memo_load_rejected, 1u);
  EXPECT_EQ(st.memo_load_errors, 0u);
  svc.submit_line(cheap_plan("a"));
  const auto r = cap.wait("a");
  ASSERT_EQ(r.find("code")->as_string(), "OK");
  EXPECT_FALSE(r.find("cached")->as_bool()) << "rejected entry must re-solve";
}

TEST(MemoJournalService, TornTailHealedOnRestartCommittedKeysStayWarm) {
  TempJournal tj("serve-journal-torn-restart");
  {
    Capture cap;
    ServiceOptions opts;
    opts.workers = 1;
    opts.memo_journal_path = tj.str();
    PlanService svc(opts, std::ref(cap));
    svc.submit_line(cheap_plan("a", 0));
    svc.submit_line(cheap_plan("b", 9));
    (void)cap.wait("a");
    (void)cap.wait("b");
    svc.drain();
  }
  // Simulate the kill -9 mid-append: garbage half-frame at the tail.
  const std::string path = tj.newest_file();
  write_raw(path, read_raw(path) + "deadbeef 999 {\"half\":");

  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.memo_journal_path = tj.str();
  PlanService svc(opts, std::ref(cap));
  const auto st = svc.stats();
  EXPECT_EQ(st.journal_truncated_tail, 1u);
  EXPECT_EQ(st.memo_loaded, 2u) << "every committed record stays warm";
  svc.submit_line(cheap_plan("a2", 0));
  EXPECT_TRUE(cap.wait("a2").find("cached")->as_bool());
  EXPECT_EQ(svc.stats().planned, 0u);
}

TEST(MemoJournalService, ServiceCompactsItselfAndBoundsGenerations) {
  TempJournal tj("serve-journal-selfcompact");
  {
    Capture cap;
    ServiceOptions opts;
    opts.workers = 1;
    opts.memo_journal_path = tj.str();
    opts.journal_compact_records = 1;  // compact after every append
    opts.journal_keep_generations = 2;
    PlanService svc(opts, std::ref(cap));
    for (int i = 0; i < 4; ++i) {
      const std::string id = "p" + std::to_string(i);
      svc.submit_line(cheap_plan(id, i));
      (void)cap.wait(id);
    }
    svc.drain();
    ASSERT_NE(svc.journal(), nullptr);
    for (int i = 0; i < 200 && svc.journal()->compactions() < 4; ++i) {
      std::this_thread::sleep_for(5ms);
    }
    const auto st = svc.stats();
    EXPECT_GE(st.journal_compactions, 4u);
    EXPECT_GE(st.memo_snapshots, 4u);
    EXPECT_LE(tj.files().size(), 2u) << "disk stays bounded";
  }
  EXPECT_LE(tj.files().size(), 2u);

  // Reload is warm: the compacted journal carries the full live memo.
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.memo_journal_path = tj.str();
  PlanService svc(opts, std::ref(cap));
  EXPECT_EQ(svc.stats().memo_loaded, 4u);
  svc.submit_line(cheap_plan("again", 2));
  EXPECT_TRUE(cap.wait("again").find("cached")->as_bool());
}

}  // namespace
}  // namespace psd::serve
