#include "psd/collective/recursive_exchange.hpp"

#include <bit>
#include <cstdlib>

#include <gtest/gtest.h>

#include "psd/collective/executor.hpp"
#include "psd/util/error.hpp"

namespace psd::collective {
namespace {

TEST(SwingRho, MatchesPaperFormula) {
  // ρ_s = (1 − (−2)^(s+1)) / 3: 1, −1, 3, −5, 11, −21, 43 ...
  EXPECT_EQ(swing_rho(0), 1);
  EXPECT_EQ(swing_rho(1), -1);
  EXPECT_EQ(swing_rho(2), 3);
  EXPECT_EQ(swing_rho(3), -5);
  EXPECT_EQ(swing_rho(4), 11);
  EXPECT_EQ(swing_rho(5), -21);
  EXPECT_EQ(swing_rho(6), 43);
}

TEST(SwingPeers, AreInvolutionsWithOddDistances) {
  for (int n : {4, 8, 16, 32, 64}) {
    const auto peer = swing_peers(n);
    const int q = std::countr_zero(static_cast<unsigned>(n));
    for (int s = 0; s < q; ++s) {
      for (int j = 0; j < n; ++j) {
        const int w = peer(j, s);
        EXPECT_NE(w, j);
        EXPECT_EQ(peer(w, s), j) << "n=" << n << " s=" << s << " j=" << j;
        // Ring distance is |ρ_s| in the node's parity direction.
        const long long rho = swing_rho(s);
        const int expect =
            static_cast<int>((((j % 2 == 0 ? j + rho : j - rho) % n) + n) % n);
        EXPECT_EQ(w, expect);
      }
    }
  }
}

TEST(HalvingDoublingPeers, XorLargestDistanceFirst) {
  const auto peer = halving_doubling_peers(8);
  EXPECT_EQ(peer(0, 0), 4);  // distance n/2 first
  EXPECT_EQ(peer(0, 1), 2);
  EXPECT_EQ(peer(0, 2), 1);
  EXPECT_EQ(peer(5, 0), 1);
}

TEST(RecursiveExchange, HalvingDoublingVolumesHalve) {
  const int n = 16;
  const auto sched =
      recursive_exchange_allreduce("hd", n, mib(16), halving_doubling_peers(n));
  ASSERT_EQ(sched.num_steps(), 8);  // 2 * log2(16)
  // Reduce-scatter: M/2, M/4, M/8, M/16.
  for (int s = 0; s < 4; ++s) {
    EXPECT_DOUBLE_EQ(sched.step(s).volume.mib(), 16.0 / (2 << s));
  }
  // Allgather mirrors: M/16, M/8, M/4, M/2.
  for (int t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(sched.step(4 + t).volume.mib(), (16.0 / 16) * (1 << t));
  }
}

TEST(RecursiveExchange, TotalTrafficIsBandwidthOptimal) {
  // AllReduce lower bound: each node sends 2(n−1)/n · M bytes.
  for (int n : {4, 8, 32}) {
    const auto sched =
        recursive_exchange_allreduce("hd", n, mib(1), halving_doubling_peers(n));
    const double expected = 2.0 * (n - 1) / n * mib(1).count();
    EXPECT_NEAR(sched.max_bytes_sent_per_node().count(), expected, 1.0);
  }
}

TEST(RecursiveExchange, ProducesValidAllReduce) {
  for (int n : {2, 4, 8, 16, 32, 64}) {
    EXPECT_TRUE(is_valid_allreduce(recursive_exchange_allreduce(
        "hd", n, mib(1), halving_doubling_peers(n))))
        << "halving-doubling n=" << n;
    EXPECT_TRUE(is_valid_allreduce(
        recursive_exchange_allreduce("swing", n, mib(1), swing_peers(n))))
        << "swing n=" << n;
  }
}

TEST(RecursiveExchange, ReduceScatterOwnership) {
  const int n = 8;
  const auto sched = recursive_exchange_reduce_scatter(
      "hd-rs", n, mib(1), halving_doubling_peers(n));
  EXPECT_EQ(sched.num_steps(), 3);
  const ChunkExecutor exec(sched, InitMode::kAllReduce);
  // The halving/doubling recursion assigns chunk j to node j.
  std::vector<int> owners(n);
  for (int c = 0; c < n; ++c) owners[static_cast<std::size_t>(c)] = c;
  EXPECT_TRUE(exec.verify_reduce_scatter(owners));
}

TEST(RecursiveExchange, RejectsNonPowerOfTwo) {
  EXPECT_THROW((void)recursive_exchange_allreduce(
                   "bad", 6, mib(1), [](int j, int) { return j ^ 1; }),
               psd::InvalidArgument);
  EXPECT_THROW((void)swing_peers(12), psd::InvalidArgument);
  EXPECT_THROW((void)halving_doubling_peers(0), psd::InvalidArgument);
}

TEST(RecursiveExchange, RejectsNonInvolution) {
  // Rotation by 1 is not an involution for n = 4.
  const auto bad = [](int j, int) { return (j + 1) % 4; };
  EXPECT_THROW((void)recursive_exchange_allreduce("bad", 4, mib(1), bad),
               psd::InvalidArgument);
}

TEST(RecursiveExchange, RejectsSelfPeer) {
  const auto bad = [](int j, int s) { return s == 0 ? j : (j ^ 1); };
  EXPECT_THROW((void)recursive_exchange_allreduce("bad", 4, mib(1), bad),
               psd::InvalidArgument);
}

TEST(RecursiveExchange, RejectsPartitionViolation) {
  // Using the same XOR bit twice: step-1 partners' responsibility sets
  // coincide instead of being disjoint.
  const auto bad = [](int j, int) { return j ^ 1; };
  EXPECT_THROW((void)recursive_exchange_allreduce("bad", 4, mib(1), bad),
               psd::InvalidArgument);
}

TEST(RecursiveExchange, MatchingsAreFullInvolutions) {
  const auto sched =
      recursive_exchange_allreduce("swing", 16, mib(1), swing_peers(16));
  for (const auto& step : sched.steps()) {
    EXPECT_TRUE(step.matching.is_full());
    EXPECT_TRUE(step.matching.is_involution());
  }
}

TEST(RecursiveExchange, SwingUsesSmallRingDistancesEarly) {
  // Swing's defining property: consecutive steps talk to nearby ring
  // neighbours (distances 1, 1, 3, 5, ...), unlike halving/doubling's n/2.
  const int n = 16;
  const auto sched =
      recursive_exchange_allreduce("swing", n, mib(1), swing_peers(n));
  const auto dist = [n](int a, int b) {
    const int d = std::abs(a - b);
    return std::min(d, n - d);
  };
  EXPECT_EQ(dist(0, sched.step(0).matching.dst_of(0)), 1);
  EXPECT_EQ(dist(0, sched.step(1).matching.dst_of(0)), 1);
  EXPECT_EQ(dist(0, sched.step(2).matching.dst_of(0)), 3);
  EXPECT_EQ(dist(0, sched.step(3).matching.dst_of(0)), 5);
}

}  // namespace
}  // namespace psd::collective
