#include "psd/photonic/reconfig_delay.hpp"

#include <gtest/gtest.h>

namespace psd::photonic {
namespace {

using topo::Matching;

TEST(ConstantDelay, ChargesUnlessIdentical) {
  const ConstantDelayModel model(microseconds(10));
  const auto a = Matching::rotation(8, 1);
  const auto b = Matching::rotation(8, 2);
  EXPECT_DOUBLE_EQ(model.delay(a, b).us(), 10.0);
  EXPECT_DOUBLE_EQ(model.delay(b, a).us(), 10.0);
  EXPECT_DOUBLE_EQ(model.delay(a, Matching::rotation(8, 1)).ns(), 0.0);
}

TEST(ConstantDelay, RejectsNegative) {
  EXPECT_THROW(ConstantDelayModel(nanoseconds(-1)), psd::InvalidArgument);
}

TEST(ConstantDelay, CloneIsIndependent) {
  const ConstantDelayModel model(microseconds(1));
  const auto clone = model.clone();
  EXPECT_DOUBLE_EQ(
      clone->delay(Matching::rotation(4, 1), Matching::rotation(4, 2)).us(), 1.0);
}

TEST(PerPortDelay, ScalesWithChangedPorts) {
  const PerPortDelayModel model(microseconds(1), nanoseconds(100));
  const auto a = Matching::rotation(8, 1);
  // Identity: free.
  EXPECT_DOUBLE_EQ(model.delay(a, Matching::rotation(8, 1)).ns(), 0.0);
  // Full rotation change: all 8 senders and 8 receivers move.
  const auto b = Matching::rotation(8, 2);
  EXPECT_DOUBLE_EQ(model.delay(a, b).ns(), 1000.0 + 100.0 * 16);
}

TEST(PerPortDelay, PartialChangeCheaper) {
  const PerPortDelayModel model(nanoseconds(0), nanoseconds(100));
  const auto a = Matching::from_pairs(8, {{0, 1}, {2, 3}});
  const auto b = Matching::from_pairs(8, {{0, 1}, {2, 4}});
  // Sender 2 re-aims (1 change); receivers 3 and 4 change (2 changes).
  EXPECT_DOUBLE_EQ(model.delay(a, b).ns(), 300.0);
}

TEST(PerPortDelay, SizeMismatchThrows) {
  const PerPortDelayModel model(nanoseconds(0), nanoseconds(1));
  EXPECT_THROW((void)model.delay(Matching(4), Matching(5)), psd::InvalidArgument);
}

}  // namespace
}  // namespace psd::photonic
