#include "psd/collective/executor.hpp"

#include <gtest/gtest.h>

#include "psd/collective/algorithms.hpp"
#include "psd/util/rng.hpp"

namespace psd::collective {
namespace {

using topo::Matching;

/// A 2-node "allreduce" that exchanges the single chunk with reduction.
CollectiveSchedule two_node_exchange(bool reduce) {
  CollectiveSchedule s("pair", 2, kib(1), 1, ChunkSpace::kSegments);
  Step st;
  st.matching = Matching::from_pairs(2, {{0, 1}, {1, 0}});
  st.volume = kib(1);
  st.transfers = {{0, 1, {0}, reduce}, {1, 0, {0}, reduce}};
  s.add_step(st);
  return s;
}

TEST(ChunkExecutor, TwoNodeAllReduce) {
  const ChunkExecutor exec(two_node_exchange(true), InitMode::kAllReduce);
  EXPECT_TRUE(exec.verify_allreduce());
  EXPECT_FALSE(exec.double_counted());
  EXPECT_TRUE(exec.mask_full(0, 0));
  EXPECT_TRUE(exec.has_contribution(0, 0, 1));
}

TEST(ChunkExecutor, ReplaceDoesNotReduce) {
  // Replacing instead of reducing loses the receiver's own contribution.
  const ChunkExecutor exec(two_node_exchange(false), InitMode::kAllReduce);
  EXPECT_FALSE(exec.verify_allreduce());
  EXPECT_TRUE(exec.has_contribution(0, 0, 1));
  EXPECT_FALSE(exec.has_contribution(0, 0, 0));  // overwritten
}

TEST(ChunkExecutor, DetectsDoubleCounting) {
  // Exchanging full state twice double-adds the partner's contribution.
  CollectiveSchedule s("dup", 2, kib(2), 1, ChunkSpace::kSegments);
  for (int rep = 0; rep < 2; ++rep) {
    Step st;
    st.matching = Matching::from_pairs(2, {{0, 1}, {1, 0}});
    st.volume = kib(2);
    st.transfers = {{0, 1, {0}, true}, {1, 0, {0}, true}};
    s.add_step(st);
  }
  const ChunkExecutor exec(s, InitMode::kAllReduce);
  EXPECT_TRUE(exec.double_counted());
  EXPECT_FALSE(exec.verify_allreduce());
}

TEST(ChunkExecutor, IncompleteScheduleFailsVerification) {
  // Only one direction of the exchange: node 1 never hears from node 0's
  // partner... actually node 0 never receives.
  CollectiveSchedule s("half", 2, kib(1), 1, ChunkSpace::kSegments);
  Step st;
  st.matching = Matching::from_pairs(2, {{0, 1}});
  st.volume = kib(1);
  st.transfers = {{0, 1, {0}, true}};
  s.add_step(st);
  const ChunkExecutor exec(s, InitMode::kAllReduce);
  EXPECT_FALSE(exec.verify_allreduce());
  EXPECT_TRUE(exec.mask_full(1, 0));   // receiver has both contributions
  EXPECT_FALSE(exec.mask_full(0, 0));  // sender stuck with its own
}

TEST(ChunkExecutor, SynchronousSemantics) {
  // In one step, A->B and B->A exchange *start-of-step* state: a chain
  // A->B->C in a single step must NOT propagate A's data to C.
  CollectiveSchedule s("chain", 3, kib(1), 1, ChunkSpace::kSegments);
  Step st;
  st.matching = Matching::from_pairs(3, {{0, 1}, {1, 2}});
  st.volume = kib(1);
  st.transfers = {{0, 1, {0}, true}, {1, 2, {0}, true}};
  s.add_step(st);
  const ChunkExecutor exec(s, InitMode::kAllReduce);
  EXPECT_TRUE(exec.has_contribution(2, 0, 1));
  EXPECT_FALSE(exec.has_contribution(2, 0, 0));  // A's data took one step only
}

TEST(ChunkExecutor, RequiresSegmentsAndAnnotations) {
  const auto blocks = alltoall_transpose(4, mib(1));
  EXPECT_THROW(ChunkExecutor(blocks, InitMode::kAllReduce), psd::InvalidArgument);

  CollectiveSchedule bare("bare", 4, mib(1), 4, ChunkSpace::kSegments);
  Step st;
  st.matching = Matching::rotation(4, 1);
  st.volume = kib(1);
  bare.add_step(st);
  EXPECT_THROW(ChunkExecutor(bare, InitMode::kAllReduce), psd::InvalidArgument);
}

TEST(ChunkExecutor, LargeDomainMaskWords) {
  // n = 80 crosses the 64-bit word boundary in the contribution masks.
  const int n = 80;  // not a power of two: use the ring algorithm
  EXPECT_TRUE(is_valid_allreduce(ring_allreduce(n, mib(1))));
}

TEST(ChunkExecutor, BroadcastInitMode) {
  const auto sched = binomial_broadcast(8, 2, mib(1));
  const ChunkExecutor exec(sched, InitMode::kBroadcast, 2);
  EXPECT_TRUE(exec.verify_all_complete());
  EXPECT_THROW(ChunkExecutor(sched, InitMode::kBroadcast, 9), psd::InvalidArgument);
}

TEST(ChunkExecutor, BroadcastInitSeedsEveryChunk) {
  // Regression: broadcast init used to seed only chunk 0 at the root, so a
  // multi-chunk broadcast (scatter + allgather, the bandwidth-optimal van de
  // Geijn algorithm) could never verify complete.
  const int n = 8;
  const int root = 0;  // scatter leaves chunk r at node r, as allgather expects
  const auto sched =
      binomial_scatter(n, root, mib(1)).then(bruck_allgather(n, mib(1)));
  const ChunkExecutor exec(sched, InitMode::kBroadcast, root);
  for (int c = 0; c < n; ++c) {
    EXPECT_TRUE(exec.mask_full(root, c)) << "root lost chunk " << c;
  }
  EXPECT_TRUE(exec.verify_all_complete());
}

TEST(ChunkExecutor, RejectsUnderAnnotatedStep) {
  // Regression: a step annotating only one of its matching's pairs used to
  // slip through fully_annotated() — and the resulting schedule could even
  // verify as a correct AllReduce while a claimed transfer moved nothing.
  CollectiveSchedule s("under", 2, kib(1), 1, ChunkSpace::kSegments);
  Step full;
  full.matching = Matching::from_pairs(2, {{0, 1}, {1, 0}});
  full.volume = kib(1);
  full.transfers = {{0, 1, {0}, true}, {1, 0, {0}, true}};
  s.add_step(full);
  // Second step claims a bidirectional exchange but annotates one direction.
  Step half;
  half.matching = Matching::from_pairs(2, {{0, 1}, {1, 0}});
  half.volume = kib(1);
  half.transfers = {{0, 1, {0}, false}};
  s.add_step(half);
  EXPECT_FALSE(s.fully_annotated());
  EXPECT_THROW(ChunkExecutor(s, InitMode::kAllReduce), psd::InvalidArgument);
}

TEST(ChunkExecutor, NumericShadowAgreesWithMasks) {
  // Execute ring allreduce numerically (actual doubles) and compare with
  // the mask verdict: both must certify correctness.
  const int n = 8;
  const auto sched = ring_allreduce(n, mib(1));
  ASSERT_TRUE(is_valid_allreduce(sched));

  psd::Rng rng(5);
  std::vector<std::vector<double>> value(
      static_cast<std::size_t>(n), std::vector<double>(static_cast<std::size_t>(n)));
  double expected_total = 0.0;
  std::vector<double> chunk_sum(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    for (int c = 0; c < n; ++c) {
      value[static_cast<std::size_t>(j)][static_cast<std::size_t>(c)] =
          rng.uniform(-1.0, 1.0);
      chunk_sum[static_cast<std::size_t>(c)] +=
          value[static_cast<std::size_t>(j)][static_cast<std::size_t>(c)];
    }
  }
  (void)expected_total;
  for (const auto& step : sched.steps()) {
    auto snapshot = value;
    for (const auto& t : step.transfers) {
      for (int c : t.chunks) {
        auto& dst = value[static_cast<std::size_t>(t.dst)][static_cast<std::size_t>(c)];
        const double incoming =
            snapshot[static_cast<std::size_t>(t.src)][static_cast<std::size_t>(c)];
        dst = t.reduce ? dst + incoming : incoming;
      }
    }
  }
  for (int j = 0; j < n; ++j) {
    for (int c = 0; c < n; ++c) {
      EXPECT_NEAR(value[static_cast<std::size_t>(j)][static_cast<std::size_t>(c)],
                  chunk_sum[static_cast<std::size_t>(c)], 1e-9);
    }
  }
}

TEST(BlockExecutor, VerifiesAllToAll) {
  const BlockExecutor exec(alltoall_transpose(6, mib(1)));
  EXPECT_TRUE(exec.verify_alltoall());
  // Node 2 holds every block destined to it plus its own originals.
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(exec.holds(2, i * 6 + 2));
  EXPECT_TRUE(exec.holds(2, 2 * 6 + 5));  // own block for 5 (copy retained)
  EXPECT_FALSE(exec.holds(2, 3 * 6 + 4)); // someone else's block for 4
}

TEST(BlockExecutor, DetectsMissingRotation) {
  // Omit the last rotation: blocks at distance n−1 never arrive.
  const int n = 5;
  CollectiveSchedule s("partial-a2a", n, mib(1), n * n, ChunkSpace::kBlocks);
  for (int i = 1; i < n - 1; ++i) {
    Step st;
    st.matching = Matching::rotation(n, i);
    st.volume = s.chunk_size();
    for (int j = 0; j < n; ++j) {
      st.transfers.push_back({j, (j + i) % n, {j * n + (j + i) % n}, false});
    }
    s.add_step(st);
  }
  const BlockExecutor exec(s);
  EXPECT_FALSE(exec.verify_alltoall());
}

TEST(BlockExecutor, RejectsForwardingUnheldBlocks) {
  const int n = 4;
  CollectiveSchedule s("bogus", n, mib(1), n * n, ChunkSpace::kBlocks);
  Step st;
  st.matching = Matching::rotation(n, 1);
  st.volume = s.chunk_size();
  // Node 0 claims to forward node 2's block — it does not hold it.
  st.transfers.push_back({0, 1, {2 * n + 1}, false});
  for (int j = 1; j < n; ++j) {
    st.transfers.push_back({j, (j + 1) % n, {j * n + (j + 1) % n}, false});
  }
  s.add_step(st);
  EXPECT_THROW(BlockExecutor{s}, psd::InvalidArgument);
}

TEST(BlockExecutor, RequiresBlockSpace) {
  const auto segments = ring_allreduce(4, mib(1));
  EXPECT_THROW(BlockExecutor{segments}, psd::InvalidArgument);
}

}  // namespace
}  // namespace psd::collective
