#include "psd/sim/flow_sim.hpp"

#include <gtest/gtest.h>

#include "psd/collective/algorithms.hpp"
#include "psd/core/optimizers.hpp"
#include "psd/topo/builders.hpp"

namespace psd::sim {
namespace {

using core::TopoChoice;
using topo::Matching;

core::CostParams paper_params(TimeNs alpha_r) {
  core::CostParams p;
  p.alpha = nanoseconds(100);
  p.delta = nanoseconds(100);
  p.alpha_r = alpha_r;
  p.b = gbps(800);
  return p;
}

FlowLevelSimulator make_sim(int n, TimeNs alpha_r,
                            RatePolicy policy = RatePolicy::kConcurrentFlow) {
  SimConfig cfg;
  cfg.params = paper_params(alpha_r);
  cfg.policy = policy;
  return FlowLevelSimulator(topo::directed_ring(n, gbps(800)),
                            Matching::rotation(n, 1), cfg);
}

/// The headline integration property: under the concurrent-flow policy the
/// event-driven simulation reproduces the analytic Eq. (4)/(7) cost exactly.
void expect_sim_matches_model(const collective::CollectiveSchedule& sched,
                              int n, TimeNs alpha_r,
                              const std::vector<TopoChoice>& plan) {
  const auto base = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle oracle(base, gbps(800));
  const core::ProblemInstance inst(sched, oracle, paper_params(alpha_r));
  const auto analytic = core::evaluate_plan(inst, plan);

  auto sim = make_sim(n, alpha_r);
  const auto result = sim.run(sched, plan);
  EXPECT_NEAR(result.completion_time.ns(), analytic.total_time().ns(),
              1e-6 * std::max(1.0, analytic.total_time().ns()))
      << sched.name();
}

TEST(FlowSim, MatchesModelStaticRingAllReduce) {
  const auto sched = collective::ring_allreduce(8, mib(1));
  expect_sim_matches_model(
      sched, 8, microseconds(10),
      std::vector<TopoChoice>(static_cast<std::size_t>(sched.num_steps()),
                              TopoChoice::kBase));
}

TEST(FlowSim, MatchesModelBvnHalvingDoubling) {
  const auto sched = collective::halving_doubling_allreduce(16, mib(4));
  expect_sim_matches_model(
      sched, 16, microseconds(10),
      std::vector<TopoChoice>(static_cast<std::size_t>(sched.num_steps()),
                              TopoChoice::kMatched));
}

TEST(FlowSim, MatchesModelOptimalPlanAllToAll) {
  const int n = 16;
  const auto sched = collective::alltoall_transpose(n, mib(2));
  const auto base = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle oracle(base, gbps(800));
  const core::ProblemInstance inst(sched, oracle, paper_params(microseconds(20)));
  const auto opt = core::optimal_plan(inst);
  expect_sim_matches_model(sched, n, microseconds(20), opt.choice);
}

TEST(FlowSim, MatchesModelAcrossReconfigDelays) {
  const int n = 8;
  const auto sched = collective::swing_allreduce(n, kib(256));
  for (double us : {0.0, 0.5, 5.0, 50.0}) {
    const auto base = topo::directed_ring(n, gbps(800));
    const flow::ThetaOracle oracle(base, gbps(800));
    const core::ProblemInstance inst(sched, oracle,
                                     paper_params(microseconds(us)));
    const auto opt = core::optimal_plan(inst);
    expect_sim_matches_model(sched, n, microseconds(us), opt.choice);
  }
}

TEST(FlowSim, TraceIsConsistent) {
  const int n = 8;
  const auto sched = collective::halving_doubling_allreduce(n, mib(1));
  auto sim = make_sim(n, microseconds(1));
  const std::vector<TopoChoice> plan(
      static_cast<std::size_t>(sched.num_steps()), TopoChoice::kMatched);
  const auto res = sim.run(sched, plan);

  ASSERT_EQ(res.steps.size(), static_cast<std::size_t>(sched.num_steps()));
  TimeNs prev_end(0.0);
  for (const auto& st : res.steps) {
    EXPECT_DOUBLE_EQ(st.start.ns(), prev_end.ns());  // barrier chaining
    EXPECT_GE(st.comm_start.ns(), st.start.ns());
    EXPECT_GT(st.end.ns(), st.comm_start.ns());
    EXPECT_DOUBLE_EQ(st.theta, 1.0);  // matched: dedicated circuits
    EXPECT_EQ(st.max_hops, 1);
    EXPECT_TRUE(st.reconfigured);
    EXPECT_EQ(st.flows, n);
    prev_end = st.end;
  }
  EXPECT_DOUBLE_EQ(res.completion_time.ns(), prev_end.ns());
  EXPECT_EQ(res.reconfigurations, sched.num_steps());
  EXPECT_GT(res.flow_completion_events, 0);
}

TEST(FlowSim, BaseStepsReportCongestion) {
  const int n = 8;
  const auto sched = collective::alltoall_transpose(n, mib(1));
  auto sim = make_sim(n, microseconds(1));
  const std::vector<TopoChoice> plan(
      static_cast<std::size_t>(sched.num_steps()), TopoChoice::kBase);
  const auto res = sim.run(sched, plan);
  for (int i = 0; i < sched.num_steps(); ++i) {
    const auto& st = res.steps[static_cast<std::size_t>(i)];
    EXPECT_NEAR(st.theta, 1.0 / (i + 1), 1e-9);  // rotation i+1 on the ring
    EXPECT_EQ(st.max_hops, i + 1);
    EXPECT_NEAR(st.max_link_utilization, 1.0, 1e-9);  // θ saturates bottleneck
    EXPECT_FALSE(st.reconfigured);  // never leaves base
  }
  EXPECT_EQ(res.reconfigurations, 0);
}

TEST(FlowSim, PaperChargingVersusPhysicalCharging) {
  // Two consecutive identical matched steps: the paper's rule charges α_r
  // twice; physical charging (fabric delay model) charges once.
  const int n = 4;
  collective::CollectiveSchedule sched("rep", n, mib(2), 1,
                                       collective::ChunkSpace::kSegments);
  for (int i = 0; i < 2; ++i) {
    collective::Step st;
    st.matching = Matching::rotation(n, 2);
    st.volume = mib(1);
    sched.add_step(st);
  }
  const std::vector<TopoChoice> plan(2, TopoChoice::kMatched);

  SimConfig paper_cfg;
  paper_cfg.params = paper_params(microseconds(10));
  FlowLevelSimulator paper_sim(topo::directed_ring(n, gbps(800)),
                               Matching::rotation(n, 1), paper_cfg);
  const auto paper_res = paper_sim.run(sched, plan);
  EXPECT_DOUBLE_EQ(paper_res.total_reconfig_time.us(), 20.0);

  SimConfig phys_cfg = paper_cfg;
  phys_cfg.paper_reconfig_charging = false;
  FlowLevelSimulator phys_sim(topo::directed_ring(n, gbps(800)),
                              Matching::rotation(n, 1), phys_cfg);
  const auto phys_res = phys_sim.run(sched, plan);
  EXPECT_DOUBLE_EQ(phys_res.total_reconfig_time.us(), 10.0);
}

TEST(FlowSim, OverlapHidesReconfiguration) {
  const int n = 8;
  const auto sched = collective::halving_doubling_allreduce(n, mib(1));
  const std::vector<TopoChoice> plan(
      static_cast<std::size_t>(sched.num_steps()), TopoChoice::kMatched);

  SimConfig cfg;
  cfg.params = paper_params(microseconds(10));
  cfg.compute_before_step.assign(static_cast<std::size_t>(sched.num_steps()),
                                 microseconds(10));  // hides α_r exactly
  FlowLevelSimulator sim(topo::directed_ring(n, gbps(800)),
                         Matching::rotation(n, 1), cfg);
  const auto with_overlap = sim.run(sched, plan);

  SimConfig cfg2;
  cfg2.params = paper_params(microseconds(10));
  FlowLevelSimulator sim2(topo::directed_ring(n, gbps(800)),
                          Matching::rotation(n, 1), cfg2);
  const auto without = sim2.run(sched, plan);
  // Compute fully hides reconfig: same completion time as without compute.
  EXPECT_NEAR(with_overlap.completion_time.ns(), without.completion_time.ns(),
              1e-6);
}

TEST(FlowSim, MaxMinFairMatchesConcurrentOnSymmetricSteps) {
  // Uniform rotations are perfectly symmetric: max-min equals θ-allocation.
  const int n = 8;
  const auto sched = collective::alltoall_transpose(n, kib(64));
  const std::vector<TopoChoice> plan(
      static_cast<std::size_t>(sched.num_steps()), TopoChoice::kBase);
  auto cf = make_sim(n, microseconds(1), RatePolicy::kConcurrentFlow);
  auto mm = make_sim(n, microseconds(1), RatePolicy::kMaxMinFair);
  const auto cf_res = cf.run(sched, plan);
  const auto mm_res = mm.run(sched, plan);
  EXPECT_NEAR(cf_res.completion_time.ns(), mm_res.completion_time.ns(),
              1e-6 * cf_res.completion_time.ns());
}

TEST(FlowSim, MaxMinReratingSpeedsUpSurvivors) {
  // Flows 0->1 (1 hop) and 3->0...0->... build: 3->1 shares link 0->1? On a
  // directed ring 0->1->2->3->0, flow 3->1 crosses links 3->0 and 0->1; flow
  // 0->1 crosses 0->1 only. Shared bottleneck 0->1: both get 1/2. Once the
  // short flow finishes, the long one re-rates to 1.
  const int n = 4;
  collective::CollectiveSchedule sched("asym", n, mib(2), 1,
                                       collective::ChunkSpace::kSegments);
  collective::Step st;
  st.matching = Matching::from_pairs(n, {{0, 2}, {3, 1}});
  st.volume = mib(1);
  sched.add_step(st);

  auto mm = make_sim(n, nanoseconds(0), RatePolicy::kMaxMinFair);
  const std::vector<TopoChoice> plan(1, TopoChoice::kBase);
  const auto res = mm.run(sched, plan);
  // Flows: 0->2 (links 0,1), 3->1 (links 3,0). Shared link 0->1: rates 1/2.
  // At t = 2m/b both are half done... they finish together here; simpler
  // check: completion bounded by serial time of 2 m at rate 1/2 plus
  // overheads, and strictly greater than m/b.
  const double mb = mib(1).count() / 100.0;  // m/b in ns
  EXPECT_GT(res.completion_time.ns(), mb);
  EXPECT_LE(res.completion_time.ns(), 2.0 * mb + 1000.0);
}

TEST(FlowSim, FailureInjectionAddsRetries) {
  const int n = 8;
  const auto sched = collective::halving_doubling_allreduce(n, mib(1));
  const std::vector<TopoChoice> plan(
      static_cast<std::size_t>(sched.num_steps()), TopoChoice::kMatched);

  SimConfig clean_cfg;
  clean_cfg.params = paper_params(microseconds(10));
  FlowLevelSimulator clean(topo::directed_ring(n, gbps(800)),
                           Matching::rotation(n, 1), clean_cfg);
  const auto clean_res = clean.run(sched, plan);
  EXPECT_EQ(clean_res.reconfig_retries, 0);

  SimConfig flaky_cfg = clean_cfg;
  flaky_cfg.reconfig_failure_prob = 0.5;
  flaky_cfg.failure_seed = 42;
  FlowLevelSimulator flaky(topo::directed_ring(n, gbps(800)),
                           Matching::rotation(n, 1), flaky_cfg);
  const auto flaky_res = flaky.run(sched, plan);
  EXPECT_GT(flaky_res.reconfig_retries, 0);
  EXPECT_GT(flaky_res.completion_time.ns(), clean_res.completion_time.ns());
  // Retry cost is exactly retries · alpha_r.
  EXPECT_NEAR(flaky_res.total_reconfig_time.us() - clean_res.total_reconfig_time.us(),
              10.0 * static_cast<double>(flaky_res.reconfig_retries), 1e-6);

  // Deterministic under the same seed.
  FlowLevelSimulator again(topo::directed_ring(n, gbps(800)),
                           Matching::rotation(n, 1), flaky_cfg);
  EXPECT_DOUBLE_EQ(again.run(sched, plan).completion_time.ns(),
                   flaky_res.completion_time.ns());
}

TEST(FlowSim, FailureProbabilityValidated) {
  SimConfig cfg;
  cfg.params = paper_params(microseconds(1));
  cfg.reconfig_failure_prob = 1.0;  // would never terminate
  FlowLevelSimulator sim(topo::directed_ring(4, gbps(800)),
                         Matching::rotation(4, 1), cfg);
  const auto sched = collective::ring_allreduce(4, mib(1));
  EXPECT_THROW(
      (void)sim.run(sched, std::vector<TopoChoice>(6, TopoChoice::kMatched)),
      psd::InvalidArgument);
}

TEST(FlowSim, ValidatesInputs) {
  auto sim = make_sim(8, microseconds(1));
  const auto sched = collective::ring_allreduce(8, mib(1));
  EXPECT_THROW((void)sim.run(sched, std::vector<TopoChoice>{}),
               psd::InvalidArgument);
  const auto wrong_n = collective::ring_allreduce(4, mib(1));
  EXPECT_THROW(
      (void)sim.run(wrong_n, std::vector<TopoChoice>(6, TopoChoice::kBase)),
      psd::InvalidArgument);
}

TEST(FlowSim, RunAcceptsReconfigPlanOverload) {
  const int n = 8;
  const auto sched = collective::swing_allreduce(n, mib(1));
  const auto base = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle oracle(base, gbps(800));
  const core::ProblemInstance inst(sched, oracle, paper_params(microseconds(5)));
  const auto opt = core::optimal_plan(inst);
  auto sim = make_sim(n, microseconds(5));
  const auto a = sim.run(sched, opt);
  const auto b = sim.run(sched, opt.choice);
  EXPECT_DOUBLE_EQ(a.completion_time.ns(), b.completion_time.ns());
}

}  // namespace
}  // namespace psd::sim
