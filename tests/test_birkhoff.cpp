#include "psd/bvn/birkhoff.hpp"

#include <gtest/gtest.h>

#include "psd/util/rng.hpp"

namespace psd::bvn {
namespace {

using psd::Matrix;
using topo::Matching;

/// Random scaled doubly-stochastic matrix (zero diagonal) built as a convex
/// combination of rotations.
Matrix random_ds(int n, int terms, psd::Rng& rng, double scale) {
  Matrix m(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  double remaining = scale;
  for (int t = 0; t < terms; ++t) {
    const double w = (t + 1 == terms) ? remaining : remaining * rng.next_double();
    remaining -= w;
    const int k = rng.uniform_int(1, n - 1);
    const auto rot = Matching::rotation(n, k);
    for (const auto& [s, d] : rot.pairs()) {
      m(static_cast<std::size_t>(s), static_cast<std::size_t>(d)) += w;
    }
  }
  return m;
}

TEST(Birkhoff, SinglePermutationYieldsOneTerm) {
  const auto rot = Matching::rotation(6, 2);
  const Matrix m = rot.to_matrix() * 3.5;
  const auto terms = birkhoff_decompose(m);
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_NEAR(terms[0].weight, 3.5, 1e-12);
  EXPECT_TRUE(terms[0].matching == rot);
}

TEST(Birkhoff, IdentityDropsSelfTraffic) {
  // Self-communication carries no bytes; the diagonal is discarded.
  const auto terms = birkhoff_decompose(Matrix::identity(4));
  EXPECT_TRUE(terms.empty());
}

TEST(Birkhoff, TwoTermCombinationRoundTrips) {
  const Matrix m = Matching::rotation(5, 1).to_matrix() * 2.0 +
                   Matching::rotation(5, 2).to_matrix() * 1.0;
  const auto terms = birkhoff_decompose(m);
  EXPECT_LE(terms.size(), 2u);
  EXPECT_NEAR(Matrix::max_diff(recompose(terms, 5), m), 0.0, 1e-9);
}

TEST(Birkhoff, RandomDoublyStochasticRoundTrips) {
  psd::Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 8;
    const Matrix m = random_ds(n, 5, rng, 4.0);
    const auto terms =
        birkhoff_decompose(m, {.tol = 1e-9, .allow_partial = false});
    EXPECT_NEAR(Matrix::max_diff(recompose(terms, n), m), 0.0, 1e-7)
        << "trial " << trial;
    // Birkhoff bound: at most (n-1)^2 + 1 terms.
    EXPECT_LE(terms.size(), static_cast<std::size_t>((n - 1) * (n - 1) + 1));
    for (const auto& t : terms) EXPECT_GT(t.weight, 0.0);
  }
}

TEST(Birkhoff, PartialMatrixDecomposes) {
  Matrix m(4, 4);
  m(0, 1) = 2.0;
  m(2, 3) = 1.0;
  const auto terms = birkhoff_decompose(m);
  EXPECT_NEAR(Matrix::max_diff(recompose(terms, 4), m), 0.0, 1e-9);
  EXPECT_LE(terms.size(), 2u);
}

TEST(Birkhoff, StrictModeRejectsUnevenSums) {
  Matrix m(2, 2);
  m(0, 1) = 1.0;  // row 1 and column 0 empty
  EXPECT_THROW(
      (void)birkhoff_decompose(m, {.tol = 1e-9, .allow_partial = false}),
      psd::InvalidArgument);
}

TEST(Birkhoff, RejectsNegativeAndNonSquare) {
  EXPECT_THROW(
      (void)birkhoff_decompose(Matrix::from_rows({{-1.0, 1.0}, {1.0, -1.0}})),
      psd::InvalidArgument);
  EXPECT_THROW((void)birkhoff_decompose(Matrix(2, 3)), psd::InvalidArgument);
}

TEST(Birkhoff, WeightsSumToRowSum) {
  psd::Rng rng(11);
  const Matrix m = random_ds(6, 4, rng, 2.5);
  const auto terms = birkhoff_decompose(m, {.tol = 1e-9, .allow_partial = false});
  double total = 0.0;
  for (const auto& t : terms) total += t.weight;
  EXPECT_NEAR(total, 2.5, 1e-7);
}

TEST(AggregateDemand, SumsWeightedMatchings) {
  const std::vector<std::pair<double, Matching>> steps{
      {2.0, Matching::rotation(4, 1)},
      {3.0, Matching::rotation(4, 1)},
      {1.0, Matching::rotation(4, 2)},
  };
  const Matrix agg = aggregate_demand(steps, 4);
  EXPECT_DOUBLE_EQ(agg(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(agg(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(agg(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(agg.total(), 4 * 5.0 + 4 * 1.0);
}

TEST(AggregateDemand, ObservationOneRoundTrip) {
  // A collective's step sequence IS a BvN decomposition of its aggregate
  // demand (Observation 1): decomposing the aggregate and recomposing must
  // return the aggregate exactly.
  const std::vector<std::pair<double, Matching>> steps{
      {1.0, Matching::rotation(6, 1)},
      {1.0, Matching::rotation(6, 2)},
      {0.5, Matching::rotation(6, 3)},
  };
  const Matrix agg = aggregate_demand(steps, 6);
  const auto terms = birkhoff_decompose(agg);
  EXPECT_NEAR(Matrix::max_diff(recompose(terms, 6), agg), 0.0, 1e-9);
}

TEST(AggregateDemand, ValidatesInput) {
  EXPECT_THROW((void)aggregate_demand({{-1.0, Matching::rotation(4, 1)}}, 4),
               psd::InvalidArgument);
  EXPECT_THROW((void)aggregate_demand({{1.0, Matching::rotation(5, 1)}}, 4),
               psd::InvalidArgument);
}

}  // namespace
}  // namespace psd::bvn
