#include "psd/bvn/birkhoff.hpp"

#include <gtest/gtest.h>

#include "psd/util/rng.hpp"

namespace psd::bvn {
namespace {

using psd::Matrix;
using topo::Matching;

/// Random scaled doubly-stochastic matrix (zero diagonal) built as a convex
/// combination of rotations.
Matrix random_ds(int n, int terms, psd::Rng& rng, double scale) {
  Matrix m(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  double remaining = scale;
  for (int t = 0; t < terms; ++t) {
    const double w = (t + 1 == terms) ? remaining : remaining * rng.next_double();
    remaining -= w;
    const int k = rng.uniform_int(1, n - 1);
    const auto rot = Matching::rotation(n, k);
    for (const auto& [s, d] : rot.pairs()) {
      m(static_cast<std::size_t>(s), static_cast<std::size_t>(d)) += w;
    }
  }
  return m;
}

TEST(Birkhoff, SinglePermutationYieldsOneTerm) {
  const auto rot = Matching::rotation(6, 2);
  const Matrix m = rot.to_matrix() * 3.5;
  const auto terms = birkhoff_decompose(m);
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_NEAR(terms[0].weight, 3.5, 1e-12);
  EXPECT_TRUE(terms[0].matching == rot);
}

TEST(Birkhoff, IdentityDropsSelfTraffic) {
  // Self-communication carries no bytes; the diagonal is discarded.
  const auto terms = birkhoff_decompose(Matrix::identity(4));
  EXPECT_TRUE(terms.empty());
}

TEST(Birkhoff, TwoTermCombinationRoundTrips) {
  const Matrix m = Matching::rotation(5, 1).to_matrix() * 2.0 +
                   Matching::rotation(5, 2).to_matrix() * 1.0;
  const auto terms = birkhoff_decompose(m);
  EXPECT_LE(terms.size(), 2u);
  EXPECT_NEAR(Matrix::max_diff(recompose(terms, 5), m), 0.0, 1e-9);
}

TEST(Birkhoff, RandomDoublyStochasticRoundTrips) {
  psd::Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 8;
    const Matrix m = random_ds(n, 5, rng, 4.0);
    const auto terms =
        birkhoff_decompose(m, {.tol = 1e-9, .allow_partial = false});
    EXPECT_NEAR(Matrix::max_diff(recompose(terms, n), m), 0.0, 1e-7)
        << "trial " << trial;
    // Birkhoff bound: at most (n-1)^2 + 1 terms.
    EXPECT_LE(terms.size(), static_cast<std::size_t>((n - 1) * (n - 1) + 1));
    for (const auto& t : terms) EXPECT_GT(t.weight, 0.0);
  }
}

TEST(Birkhoff, PartialMatrixDecomposes) {
  Matrix m(4, 4);
  m(0, 1) = 2.0;
  m(2, 3) = 1.0;
  const auto terms = birkhoff_decompose(m);
  EXPECT_NEAR(Matrix::max_diff(recompose(terms, 4), m), 0.0, 1e-9);
  EXPECT_LE(terms.size(), 2u);
}

TEST(Birkhoff, StrictModeRejectsUnevenSums) {
  Matrix m(2, 2);
  m(0, 1) = 1.0;  // row 1 and column 0 empty
  EXPECT_THROW(
      (void)birkhoff_decompose(m, {.tol = 1e-9, .allow_partial = false}),
      psd::InvalidArgument);
}

TEST(Birkhoff, RejectsNegativeAndNonSquare) {
  EXPECT_THROW(
      (void)birkhoff_decompose(Matrix::from_rows({{-1.0, 1.0}, {1.0, -1.0}})),
      psd::InvalidArgument);
  EXPECT_THROW((void)birkhoff_decompose(Matrix(2, 3)), psd::InvalidArgument);
}

TEST(Birkhoff, WeightsSumToRowSum) {
  psd::Rng rng(11);
  const Matrix m = random_ds(6, 4, rng, 2.5);
  const auto terms = birkhoff_decompose(m, {.tol = 1e-9, .allow_partial = false});
  double total = 0.0;
  for (const auto& t : terms) total += t.weight;
  EXPECT_NEAR(total, 2.5, 1e-7);
}

TEST(AggregateDemand, SumsWeightedMatchings) {
  const std::vector<std::pair<double, Matching>> steps{
      {2.0, Matching::rotation(4, 1)},
      {3.0, Matching::rotation(4, 1)},
      {1.0, Matching::rotation(4, 2)},
  };
  const Matrix agg = aggregate_demand(steps, 4);
  EXPECT_DOUBLE_EQ(agg(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(agg(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(agg(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(agg.total(), 4 * 5.0 + 4 * 1.0);
}

TEST(AggregateDemand, ObservationOneRoundTrip) {
  // A collective's step sequence IS a BvN decomposition of its aggregate
  // demand (Observation 1): decomposing the aggregate and recomposing must
  // return the aggregate exactly.
  const std::vector<std::pair<double, Matching>> steps{
      {1.0, Matching::rotation(6, 1)},
      {1.0, Matching::rotation(6, 2)},
      {0.5, Matching::rotation(6, 3)},
  };
  const Matrix agg = aggregate_demand(steps, 6);
  const auto terms = birkhoff_decompose(agg);
  EXPECT_NEAR(Matrix::max_diff(recompose(terms, 6), agg), 0.0, 1e-9);
}

TEST(AggregateDemand, ValidatesInput) {
  EXPECT_THROW((void)aggregate_demand({{-1.0, Matching::rotation(4, 1)}}, 4),
               psd::InvalidArgument);
  EXPECT_THROW((void)aggregate_demand({{1.0, Matching::rotation(5, 1)}}, 4),
               psd::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Incremental decomposition (support + matching maintained across steps).

/// Mix of `rots` rotations with random weights; all row/col sums equal, zero
/// diagonal. `distinct` cycles k through 1..n-1 for dense support.
Matrix rotation_mix(int n, int rots, psd::Rng& rng, bool distinct) {
  Matrix m(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int t = 0; t < rots; ++t) {
    const int k = distinct ? 1 + t % (n - 1) : rng.uniform_int(1, n - 1);
    const double w = rng.uniform(0.1, 1.0);
    for (const auto& [s, d] : Matching::rotation(n, k).pairs()) {
      m(static_cast<std::size_t>(s), static_cast<std::size_t>(d)) += w;
    }
  }
  return m;
}

int support_size(const Matrix& m, double tol) {
  int count = 0;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (r != c && m(r, c) > tol) ++count;
    }
  }
  return count;
}

TEST(BirkhoffIncremental, RandomDenseRoundTripsWithinTolerance) {
  psd::Rng rng(42);
  // (n, rotations): n=64 fully dense support; larger n at moderate density
  // to keep the suite fast.
  const std::pair<int, int> cases[] = {{64, 63}, {128, 32}, {256, 12}};
  for (const auto& [n, rots] : cases) {
    const Matrix m = rotation_mix(n, rots, rng, /*distinct=*/true);
    const auto terms =
        birkhoff_decompose(m, {.tol = 1e-9, .allow_partial = false});
    EXPECT_NEAR(Matrix::max_diff(recompose(terms, n), m), 0.0, 1e-9)
        << "n=" << n;
    // Every extraction zeroes at least one support entry.
    EXPECT_LE(terms.size(), static_cast<std::size_t>(support_size(m, 1e-9)))
        << "n=" << n;
    for (const auto& t : terms) EXPECT_GT(t.weight, 0.0);
  }
}

TEST(BirkhoffIncremental, AgreesWithRebuildReferenceOnRecomposition) {
  psd::Rng rng(7);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = 32;
    const Matrix m = rotation_mix(n, 6, rng, /*distinct=*/false);
    const auto inc =
        birkhoff_decompose(m, {.tol = 1e-9, .allow_partial = false});
    const auto ref = birkhoff_decompose(
        m, {.tol = 1e-9, .allow_partial = false, .incremental = false});
    EXPECT_NEAR(Matrix::max_diff(recompose(inc, n), m), 0.0, 1e-9);
    EXPECT_NEAR(Matrix::max_diff(recompose(ref, n), m), 0.0, 1e-9);
    EXPECT_LE(inc.size(), static_cast<std::size_t>(support_size(m, 1e-9)));
    EXPECT_LE(ref.size(), static_cast<std::size_t>(support_size(m, 1e-9)));
  }
}

TEST(BirkhoffIncremental, DiagonalOnlyMatchingDoesNotStrandOffDiagonalMass) {
  // Support {(1,1), (2,1)} admits the diagonal-only maximum matching
  // {(1,1)}; the decomposition must discard the self-traffic and still
  // extract (2,1) instead of bailing out with a non-trivial residual.
  Matrix m(3, 3);
  m(1, 1) = 0.16820017270238311;
  m(2, 1) = 0.83179982729761692;
  for (const bool incremental : {true, false}) {
    const auto terms = birkhoff_decompose(
        m, {.tol = 1e-9, .allow_partial = true, .incremental = incremental});
    ASSERT_EQ(terms.size(), 1u) << "incremental=" << incremental;
    EXPECT_EQ(terms[0].matching.dst_of(2), 1);
    EXPECT_NEAR(terms[0].weight, 0.83179982729761692, 1e-15);
  }
}

TEST(BirkhoffIncremental, RandomDiagonalHeavyInputsDecomposeCleanly) {
  // Random sub-doubly-stochastic matrices with diagonal mass: the diagonal
  // is discarded (self-traffic), everything off-diagonal must round-trip.
  psd::Rng rng(777);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(8));
    Matrix m(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        if (rng.next_double() < 0.4) {
          m(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) = rng.next_double();
        }
      }
    }
    for (int r = 0; r < n; ++r) {
      const double s = m.row_sum(static_cast<std::size_t>(r));
      if (s > 1.0) {
        for (int c = 0; c < n; ++c) m(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) /= s;
      }
    }
    for (int c = 0; c < n; ++c) {
      const double s = m.col_sum(static_cast<std::size_t>(c));
      if (s > 1.0) {
        for (int r = 0; r < n; ++r) m(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) /= s;
      }
    }
    Matrix off_diag = m;
    for (int r = 0; r < n; ++r) off_diag(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) = 0.0;
    for (const bool incremental : {true, false}) {
      const auto terms = birkhoff_decompose(
          m, {.tol = 1e-9, .allow_partial = true, .incremental = incremental});
      EXPECT_NEAR(Matrix::max_diff(recompose(terms, n), off_diag), 0.0, 1e-7)
          << "trial " << trial << " incremental=" << incremental;
    }
  }
}

TEST(BirkhoffIncremental, ZeroToleranceExtractsExactZeroedCells) {
  // With tol == 0 the minimum matched cell lands on exactly 0.0 after
  // subtraction; it must still leave the support or the next iteration
  // would extract a zero-weight term.
  const Matrix m = Matching::rotation(5, 1).to_matrix() * 2.0 +
                   Matching::rotation(5, 2).to_matrix() * 1.0;
  for (const bool incremental : {true, false}) {
    const auto terms = birkhoff_decompose(
        m, {.tol = 0.0, .allow_partial = true, .incremental = incremental});
    EXPECT_EQ(terms.size(), 2u) << "incremental=" << incremental;
    EXPECT_NEAR(Matrix::max_diff(recompose(terms, 5), m), 0.0, 1e-12);
  }
}

TEST(BirkhoffIncremental, MatchesReferenceExactlyOnForcedFixtures) {
  // When every extracted matching is forced (disjoint rotations, partial
  // matrices), warm-start and rebuild walk identical extraction sequences.
  const Matrix fixtures[] = {
      Matching::rotation(6, 2).to_matrix() * 3.5,
      Matching::rotation(5, 1).to_matrix() * 2.0 +
          Matching::rotation(5, 2).to_matrix() * 1.0,
      [] {
        Matrix m(4, 4);
        m(0, 1) = 2.0;
        m(2, 3) = 1.0;
        return m;
      }(),
  };
  for (const Matrix& m : fixtures) {
    const auto inc = birkhoff_decompose(m);
    const auto ref =
        birkhoff_decompose(m, {.tol = 1e-9, .allow_partial = true, .incremental = false});
    ASSERT_EQ(inc.size(), ref.size());
    for (std::size_t i = 0; i < inc.size(); ++i) {
      EXPECT_EQ(inc[i].weight, ref[i].weight);
      EXPECT_TRUE(inc[i].matching == ref[i].matching);
    }
  }
}

// ---------------------------------------------------------------------------
// Byte-identical regression against the pre-rewrite implementation: the
// rebuild-reference path must reproduce, bit for bit, the plans the original
// (support-rebuilding, cold-Hopcroft–Karp) code produced on these fixtures.
// Golden data captured from the pre-rewrite binary at 17 significant digits
// (lossless double round-trip).

struct GoldenTerm {
  double weight;
  std::vector<int> dst;
};

TEST(BirkhoffGolden, ReferencePathIsByteIdenticalToPreRewrite) {
  struct Case {
    const char* name;
    Matrix input;
    bool allow_partial;
    std::vector<GoldenTerm> terms;
  };
  std::vector<Case> cases;
  cases.push_back({"single_rot", Matching::rotation(6, 2).to_matrix() * 3.5, true,
                   {{3.5, {2, 3, 4, 5, 0, 1}}}});
  cases.push_back({"two_rot",
                   Matching::rotation(5, 1).to_matrix() * 2.0 +
                       Matching::rotation(5, 2).to_matrix() * 1.0,
                   true,
                   {{2, {1, 2, 3, 4, 0}}, {1, {2, 3, 4, 0, 1}}}});
  {
    Matrix m(4, 4);
    m(0, 1) = 2.0;
    m(2, 3) = 1.0;
    cases.push_back({"partial", std::move(m), true,
                     {{1, {1, -1, 3, -1}}, {1, {1, -1, -1, -1}}}});
  }
  // The eight random_ds(8, 5, ·, 4.0) trials share one generator, seed 3 —
  // regenerate them in sequence exactly as the original test fixture did.
  const std::vector<std::vector<GoldenTerm>> rand8_golden = {
      {{0.27008807964132603, {1, 2, 3, 4, 5, 6, 7, 0}},
       {0.8503747195840845, {2, 3, 0, 1, 6, 7, 4, 5}},
       {0.11698402030343763, {3, 4, 5, 6, 7, 0, 1, 2}},
       {1.9121784608870673, {6, 7, 0, 1, 2, 3, 4, 5}},
       {0.8503747195840845, {6, 7, 4, 5, 2, 3, 0, 1}}},
      {{0.027918260990478352, {1, 2, 3, 4, 5, 6, 7, 0}},
       {2.4140218636566235, {2, 3, 4, 5, 6, 7, 0, 1}},
       {0.77764522701827266, {3, 4, 5, 6, 7, 0, 1, 2}},
       {0.78041464833462548, {4, 5, 6, 7, 0, 1, 2, 3}}},
      {{0.072096337753641729, {2, 3, 0, 1, 6, 7, 4, 5}},
       {0.072096337753641729, {5, 6, 7, 0, 2, 3, 4, 1}},
       {0.072096337753641729, {5, 6, 7, 1, 2, 3, 0, 4}},
       {0.18713706912447292, {5, 6, 7, 0, 1, 2, 3, 4}},
       {3.4523812421073186, {6, 7, 0, 1, 2, 3, 4, 5}},
       {0.072096337753641659, {6, 7, 0, 5, 1, 2, 3, 4}},
       {0.072096337753641659, {6, 7, 4, 0, 1, 2, 3, 5}}},
      {{0.022403854138255384, {1, 0, 3, 2, 5, 4, 7, 6}},
       {0.006065629246711386, {3, 0, 1, 2, 7, 4, 5, 6}},
       {0.006065629246711386, {5, 0, 7, 2, 3, 4, 1, 6}},
       {0.30981895728055275, {5, 0, 7, 2, 1, 4, 3, 6}},
       {0.022403854138255384, {5, 2, 7, 0, 1, 6, 3, 4}},
       {0.006065629246711386, {5, 4, 7, 6, 1, 2, 3, 0}},
       {3.282822376790572, {5, 6, 7, 0, 1, 2, 3, 4}},
       {0.32195021577397487, {7, 6, 1, 0, 3, 2, 5, 4}},
       {0.006065629246711386, {7, 6, 1, 4, 3, 0, 5, 2}},
       {0.010272595644833297, {7, 6, 1, 4, 3, 2, 5, 0}},
       {0.0060656292467106999, {7, 6, 5, 4, 1, 2, 3, 0}}},
      {{0.55186827139443628, {3, 0, 1, 2, 7, 4, 5, 6}},
       {0.12105308866678799, {3, 4, 6, 7, 2, 0, 1, 5}},
       {0.12105308866678799, {4, 5, 0, 6, 7, 3, 1, 2}},
       {0.34134236440940358, {4, 7, 0, 6, 2, 3, 1, 5}},
       {0.089472818318244718, {7, 4, 0, 6, 2, 3, 1, 5}},
       {0.34134236440940358, {7, 4, 6, 1, 0, 3, 2, 5}},
       {0.12105308866678799, {7, 4, 0, 6, 3, 1, 2, 5}},
       {0.34134236440940358, {6, 5, 0, 7, 2, 1, 4, 3}},
       {1.29855119099752, {6, 7, 0, 1, 2, 3, 4, 5}},
       {0.12105308866678799, {6, 7, 5, 1, 0, 3, 4, 2}},
       {0.12105308866678799, {6, 7, 5, 1, 2, 0, 4, 3}},
       {0.43081518272764829, {6, 7, 5, 1, 3, 0, 4, 2}}},
      {{0.12428280659612856, {4, 0, 1, 5, 3, 7, 2, 6}},
       {1.6115494596447144, {2, 3, 4, 5, 6, 7, 0, 1}},
       {0.12428280659612856, {2, 3, 6, 7, 0, 4, 5, 1}},
       {0.12428280659612856, {7, 5, 4, 2, 6, 1, 0, 3}},
       {2.0156021205668999, {4, 5, 6, 7, 0, 1, 2, 3}}},
      {{0.12332148914299092, {1, 2, 3, 0, 5, 6, 7, 4}},
       {0.19408371554211995, {1, 2, 3, 4, 5, 6, 7, 0}},
       {0.086643152873289317, {2, 3, 4, 5, 6, 7, 0, 1}},
       {0.019439308981636372, {3, 4, 5, 6, 7, 1, 2, 0}},
       {3.4337515353353361, {4, 5, 6, 7, 0, 1, 2, 3}},
       {0.019439308981636372, {4, 5, 6, 7, 0, 2, 1, 3}},
       {0.019439308981636372, {5, 6, 7, 4, 1, 0, 3, 2}},
       {0.10388218016135453, {5, 6, 7, 4, 1, 2, 3, 0}}},
      {{0.014913248488881004, {2, 7, 1, 5, 3, 4, 0, 6}},
       {0.44541447444920657, {5, 7, 0, 2, 1, 4, 3, 6}},
       {0.014913248488881004, {6, 7, 0, 2, 3, 4, 5, 1}},
       {0.44541447444920657, {6, 7, 1, 0, 3, 2, 5, 4}},
       {0.78166359018295273, {6, 7, 0, 1, 2, 3, 4, 5}},
       {0.44541447444920657, {6, 0, 7, 1, 2, 3, 4, 5}},
       {0.014913248488880981, {6, 0, 1, 2, 3, 7, 4, 5}},
       {1.3471990210869351, {7, 0, 1, 2, 3, 4, 5, 6}},
       {0.014913248488880981, {7, 0, 1, 2, 6, 3, 4, 5}},
       {0.014913248488880981, {7, 0, 4, 1, 2, 3, 5, 6}},
       {0.014913248488880981, {7, 3, 0, 1, 2, 4, 5, 6}},
       {0.44541447444920657, {7, 6, 0, 1, 2, 3, 4, 5}}}};
  {
    psd::Rng rng(3);
    for (int trial = 0; trial < 8; ++trial) {
      Matrix m = random_ds(8, 5, rng, 4.0);
      cases.push_back({"rand8", std::move(m), false,
                       rand8_golden[static_cast<std::size_t>(trial)]});
    }
  }
  {
    psd::Rng rng(11);
    cases.push_back({"rand6", random_ds(6, 4, rng, 2.5), false,
                     {{0.60119301684504645, {1, 2, 3, 4, 5, 0}},
                      {0.55818554154308253, {2, 3, 4, 5, 0, 1}},
                      {1.3406214416118711, {3, 4, 5, 0, 1, 2}}}});
  }

  for (const Case& c : cases) {
    const auto terms = birkhoff_decompose(
        c.input,
        {.tol = 1e-9, .allow_partial = c.allow_partial, .incremental = false});
    ASSERT_EQ(terms.size(), c.terms.size()) << c.name;
    for (std::size_t i = 0; i < terms.size(); ++i) {
      EXPECT_EQ(terms[i].weight, c.terms[i].weight) << c.name << " term " << i;
      const int n = terms[i].matching.size();
      ASSERT_EQ(static_cast<std::size_t>(n), c.terms[i].dst.size());
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ(terms[i].matching.dst_of(j),
                  c.terms[i].dst[static_cast<std::size_t>(j)])
            << c.name << " term " << i << " src " << j;
      }
    }
  }
}

// ---- Pool-parallel support maintenance -----------------------------------

/// Byte-level equality of two decompositions: same term count, bitwise
/// weights, identical matchings.
void expect_terms_identical(const std::vector<BvnTerm>& a,
                            const std::vector<BvnTerm>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].weight, b[i].weight) << "term " << i;
    EXPECT_TRUE(a[i].matching == b[i].matching) << "term " << i;
  }
}

TEST(BirkhoffParallel, ByteIdenticalToSerialOnRotationMix) {
  // n >= 64 engages the pool fan-out of the residual-subtract +
  // support-drop scan; rows touch disjoint state, so the emitted terms
  // must match the serial scan byte for byte.
  psd::Rng rng(17);
  for (int trial = 0; trial < 3; ++trial) {
    const Matrix m = random_ds(96, 7, rng, 3.0);
    const auto serial =
        birkhoff_decompose(m, {.tol = 1e-9, .parallel = false});
    const auto parallel =
        birkhoff_decompose(m, {.tol = 1e-9, .parallel = true});
    expect_terms_identical(serial, parallel);
    EXPECT_NEAR(Matrix::max_diff(recompose(parallel, 96), m), 0.0, 1e-7);
  }
}

TEST(BirkhoffParallel, ByteIdenticalOnDenseSupport) {
  // Dense uniform doubly-stochastic input: every off-diagonal entry in the
  // support — the worst case for the per-step maintenance scan.
  const int n = 64;
  Matrix m(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (r != c) {
        m(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
            1.0 / static_cast<double>(n - 1);
      }
    }
  }
  const auto serial = birkhoff_decompose(m, {.parallel = false});
  const auto parallel = birkhoff_decompose(m, {.parallel = true});
  expect_terms_identical(serial, parallel);
}

TEST(BirkhoffParallel, ByteIdenticalOnReferenceRebuildPath) {
  // The full-rebuild reference path rebuilds the support every step — its
  // parallel row fill must also be invisible in the output.
  psd::Rng rng(23);
  const Matrix m = random_ds(64, 5, rng, 2.0);
  const auto serial = birkhoff_decompose(
      m, {.tol = 1e-9, .incremental = false, .parallel = false});
  const auto parallel = birkhoff_decompose(
      m, {.tol = 1e-9, .incremental = false, .parallel = true});
  expect_terms_identical(serial, parallel);
}

}  // namespace
}  // namespace psd::bvn
