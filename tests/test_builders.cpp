#include "psd/topo/builders.hpp"

#include <gtest/gtest.h>

#include "psd/topo/properties.hpp"

namespace psd::topo {
namespace {

TEST(Builders, DirectedRingStructure) {
  const Graph g = directed_ring(8, gbps(800));
  EXPECT_EQ(g.num_nodes(), 8);
  EXPECT_EQ(g.num_edges(), 8);
  for (NodeId v = 0; v < 8; ++v) {
    EXPECT_EQ(g.out_degree(v), 1);
    EXPECT_EQ(g.in_degree(v), 1);
    EXPECT_NE(g.find_edge(v, (v + 1) % 8), -1);
  }
  std::vector<int> order;
  EXPECT_TRUE(is_directed_ring(g, &order));
  for (int v = 0; v < 8; ++v) EXPECT_EQ(order[static_cast<std::size_t>(v)], v);
}

TEST(Builders, DirectedRingWithStride) {
  const Graph g = directed_ring(8, gbps(800), 3);
  std::vector<int> order;
  EXPECT_TRUE(is_directed_ring(g, &order));
  // Walking 0 -> 3 -> 6 -> 1 ... covers all nodes.
  EXPECT_EQ(order[3], 1);
  EXPECT_EQ(order[6], 2);
}

TEST(Builders, DirectedRingRejectsBadStride) {
  EXPECT_THROW((void)directed_ring(8, gbps(1), 0), psd::InvalidArgument);
  EXPECT_THROW((void)directed_ring(8, gbps(1), 2), psd::InvalidArgument);  // gcd 2
  EXPECT_THROW((void)directed_ring(8, gbps(1), 8), psd::InvalidArgument);  // 0 mod n
  EXPECT_THROW((void)directed_ring(1, gbps(1)), psd::InvalidArgument);
}

TEST(Builders, BidirectionalRing) {
  const Graph g = bidirectional_ring(6, gbps(400));
  EXPECT_EQ(g.num_edges(), 12);
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(g.out_degree(v), 2);
    EXPECT_EQ(g.in_degree(v), 2);
  }
  EXPECT_FALSE(is_directed_ring(g));
  EXPECT_EQ(diameter(g), 3);
}

TEST(Builders, CoprimeRingUnion) {
  const Graph g = coprime_ring_union(8, gbps(800), {1, 3});
  EXPECT_EQ(g.num_edges(), 16);
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(g.out_degree(v), 2);
  EXPECT_THROW((void)coprime_ring_union(8, gbps(1), {1, 4}), psd::InvalidArgument);
  EXPECT_THROW((void)coprime_ring_union(8, gbps(1), {}), psd::InvalidArgument);
}

TEST(Builders, Torus2d) {
  const Graph g = torus_2d(3, 4, gbps(100));
  EXPECT_EQ(g.num_nodes(), 12);
  // 2 bidirectional links per node (right, down) => 4 directed edges per node.
  EXPECT_EQ(g.num_edges(), 48);
  for (NodeId v = 0; v < 12; ++v) {
    EXPECT_EQ(g.out_degree(v), 4);
    EXPECT_EQ(g.in_degree(v), 4);
  }
  EXPECT_TRUE(is_strongly_connected(g));
  EXPECT_THROW((void)torus_2d(1, 4, gbps(1)), psd::InvalidArgument);
}

TEST(Builders, Hypercube) {
  const Graph g = hypercube(3, gbps(100));
  EXPECT_EQ(g.num_nodes(), 8);
  EXPECT_EQ(g.num_edges(), 8 * 3);  // dim directed edges out of each node
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(g.out_degree(v), 3);
  EXPECT_EQ(diameter(g), 3);
  EXPECT_THROW((void)hypercube(0, gbps(1)), psd::InvalidArgument);
}

TEST(Builders, FullMesh) {
  const Graph g = full_mesh(5, gbps(100));
  EXPECT_EQ(g.num_edges(), 20);
  EXPECT_EQ(diameter(g), 1);
}

TEST(Builders, MatchedTopologyRealizesMatching) {
  const Matching m = Matching::from_pairs(4, {{0, 2}, {2, 0}, {1, 3}});
  const Graph g = matched_topology(m, gbps(800));
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(matches_topology(g, m));
  EXPECT_NE(g.find_edge(1, 3), -1);
  EXPECT_EQ(g.find_edge(3, 1), -1);
}

TEST(Builders, IsDirectedRingNegativeCases) {
  // Two disjoint 2-cycles: out/in degree 1 everywhere, but not one cycle.
  Graph g(4);
  g.add_edge(0, 1, gbps(1));
  g.add_edge(1, 0, gbps(1));
  g.add_edge(2, 3, gbps(1));
  g.add_edge(3, 2, gbps(1));
  EXPECT_FALSE(is_directed_ring(g));

  const Graph mesh = full_mesh(3, gbps(1));
  EXPECT_FALSE(is_directed_ring(mesh));

  const Graph empty(3);
  EXPECT_FALSE(is_directed_ring(empty));
}

}  // namespace
}  // namespace psd::topo
