#include "psd/util/matrix.hpp"

#include <gtest/gtest.h>

#include "psd/util/error.hpp"

namespace psd {
namespace {

TEST(Matrix, ZeroInitialized) {
  const Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
  EXPECT_TRUE(id.is_sub_permutation());
  EXPECT_TRUE(id.is_doubly_stochastic_scaled(1.0));
}

TEST(Matrix, FromRowsAndSums) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.row_sum(0), 3.0);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 7.0);
  EXPECT_DOUBLE_EQ(m.col_sum(0), 4.0);
  EXPECT_DOUBLE_EQ(m.col_sum(1), 6.0);
  EXPECT_DOUBLE_EQ(m.total(), 10.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
}

TEST(Matrix, FromRowsRejectsRaggedInput) {
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), InvalidArgument);
}

TEST(Matrix, Arithmetic) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{4, 3}, {2, 1}});
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  const Matrix diff = sum - b;
  EXPECT_DOUBLE_EQ(Matrix::max_diff(diff, a), 0.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  EXPECT_DOUBLE_EQ((0.5 * scaled)(1, 0), 3.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(a += b, InvalidArgument);
  EXPECT_THROW((void)Matrix::max_diff(a, b), InvalidArgument);
}

TEST(Matrix, NonNegativity) {
  EXPECT_TRUE(Matrix::from_rows({{0, 1}, {2, 0}}).is_nonnegative());
  EXPECT_FALSE(Matrix::from_rows({{0, -1}, {2, 0}}).is_nonnegative());
  // Tiny negative noise within tolerance is accepted.
  EXPECT_TRUE(Matrix::from_rows({{-1e-15, 1}, {2, 0}}).is_nonnegative());
}

TEST(Matrix, DoublyStochasticScaled) {
  const Matrix m = Matrix::from_rows({{0.5, 1.5}, {1.5, 0.5}});
  EXPECT_TRUE(m.is_doubly_stochastic_scaled(2.0));
  EXPECT_FALSE(m.is_doubly_stochastic_scaled(1.0));
  const Matrix uneven = Matrix::from_rows({{1, 0}, {0.5, 0.5}});
  EXPECT_FALSE(uneven.is_doubly_stochastic_scaled(1.0));
  EXPECT_FALSE(Matrix(2, 3).is_doubly_stochastic_scaled(0.0));  // non-square
}

TEST(Matrix, SubPermutationChecks) {
  EXPECT_TRUE(Matrix::from_rows({{0, 1}, {1, 0}}).is_sub_permutation());
  EXPECT_TRUE(Matrix::from_rows({{0, 1}, {0, 0}}).is_sub_permutation());
  EXPECT_TRUE(Matrix(3, 3).is_sub_permutation());  // empty
  // Two ones in a row.
  EXPECT_FALSE(Matrix::from_rows({{1, 1}, {0, 0}}).is_sub_permutation());
  // Two ones in a column.
  EXPECT_FALSE(Matrix::from_rows({{1, 0}, {1, 0}}).is_sub_permutation());
  // Non-0/1 entry.
  EXPECT_FALSE(Matrix::from_rows({{0.5, 0}, {0, 1}}).is_sub_permutation());
  // Non-square.
  EXPECT_FALSE(Matrix(2, 3).is_sub_permutation());
}

TEST(Matrix, ToStringContainsEntries) {
  const Matrix m = Matrix::from_rows({{1.25, 0}, {0, 2.5}});
  const std::string s = m.to_string(2);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("2.50"), std::string::npos);
}

TEST(Matrix, RowSpansViewContiguousStorage) {
  Matrix m = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const auto r0 = m.row(0);
  const auto r1 = m.row(1);
  ASSERT_EQ(r0.size(), 3u);
  ASSERT_EQ(r1.size(), 3u);
  EXPECT_EQ(r0[2], 3.0);
  EXPECT_EQ(r1[0], 4.0);
  // Rows are adjacent slices of one flat row-major buffer.
  EXPECT_EQ(r0.data() + 3, r1.data());
  EXPECT_EQ(m.data(), r0.data());

  // Writes through a span are writes to the matrix.
  r1[2] = 42.0;
  EXPECT_EQ(m(1, 2), 42.0);
}

TEST(Matrix, ConstRowSpanReads) {
  const Matrix m = Matrix::from_rows({{1.5, -2.5}});
  const auto row = m.row(0);
  EXPECT_EQ(row[0], 1.5);
  EXPECT_EQ(row[1], -2.5);
  EXPECT_EQ(m.data()[1], -2.5);
}

}  // namespace
}  // namespace psd
