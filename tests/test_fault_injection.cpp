// util::FaultInjector: trigger policies (probability / after / budget /
// delay), seeded determinism (same seed ⇒ same schedule ⇒ byte-identical
// event logs), the arm_spec grammar, and the disarmed fast path.
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "psd/util/error.hpp"
#include "psd/util/fault_injection.hpp"

namespace psd::util {
namespace {

TEST(FaultInjector, DisarmedSitesNeverFireAndSkipBookkeeping) {
  FaultInjector fault(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(fault.fire("journal.append.torn"));
  }
  EXPECT_EQ(fault.fires(), 0u);
  EXPECT_EQ(fault.hits("journal.append.torn"), 0u)
      << "a never-armed site records nothing";
  EXPECT_TRUE(fault.event_log().empty());
}

TEST(FaultInjector, ProbabilityOneFiresEveryHit) {
  FaultInjector fault(7);
  fault.arm("worker.crash", {});
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fault.fire("worker.crash"));
  EXPECT_EQ(fault.fires(), 5u);
  EXPECT_EQ(fault.fires("worker.crash"), 5u);
  EXPECT_EQ(fault.hits("worker.crash"), 5u);
}

TEST(FaultInjector, AfterAndBudgetPickTheNthOperation) {
  // "Fail exactly the 3rd append": after = 2, budget = 1.
  FaultInjector fault(7);
  fault.arm("journal.append.torn", {.after = 2, .budget = 1});
  EXPECT_FALSE(fault.fire("journal.append.torn"));
  EXPECT_FALSE(fault.fire("journal.append.torn"));
  EXPECT_TRUE(fault.fire("journal.append.torn"));
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(fault.fire("journal.append.torn")) << "budget is spent";
  }
  EXPECT_EQ(fault.fires("journal.append.torn"), 1u);
  EXPECT_EQ(fault.hits("journal.append.torn"), 13u);
  EXPECT_EQ(fault.event_log(),
            (std::vector<std::string>{"journal.append.torn#3"}));
}

TEST(FaultInjector, ProbabilityIsSeededAndPartial) {
  // p = 0.5 over many hits: some fire, some don't — and the pattern is a
  // pure function of (seed, site, hit).
  std::vector<bool> pattern;
  {
    FaultInjector fault(1234);
    fault.arm("transport.read.short", {.probability = 0.5});
    for (int i = 0; i < 200; ++i) {
      pattern.push_back(fault.fire("transport.read.short"));
    }
    const std::uint64_t fired = fault.fires("transport.read.short");
    EXPECT_GT(fired, 0u);
    EXPECT_LT(fired, 200u);
  }
  FaultInjector replay(1234);
  replay.arm("transport.read.short", {.probability = 0.5});
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(replay.fire("transport.read.short"), pattern[i])
        << "same seed must replay the same schedule (hit " << i + 1 << ")";
  }
}

TEST(FaultInjector, ResetReplaysFromScratch) {
  FaultInjector fault(99);
  fault.arm("a", {.probability = 0.5});
  std::vector<bool> first;
  for (int i = 0; i < 50; ++i) first.push_back(fault.fire("a"));
  const auto log_first = fault.event_log();

  fault.reset(99);  // same seed: as if freshly constructed
  fault.arm("a", {.probability = 0.5});
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(fault.fire("a"), first[i]);
  }
  EXPECT_EQ(fault.event_log(), log_first);
}

TEST(FaultInjector, EventLogIsSortedBySiteThenHit) {
  FaultInjector fault(7);
  fault.arm("b.site", {});
  fault.arm("a.site", {});
  EXPECT_TRUE(fault.fire("b.site"));
  EXPECT_TRUE(fault.fire("a.site"));
  EXPECT_TRUE(fault.fire("b.site"));
  EXPECT_EQ(fault.event_log(), (std::vector<std::string>{
                                   "a.site#1", "b.site#1", "b.site#2"}));
}

TEST(FaultInjector, FireDelayReportsTheArmedDelayOnlyWhenFiring) {
  using std::chrono::milliseconds;
  FaultInjector fault(7);
  fault.arm("worker.slow", {.after = 1, .delay = milliseconds{25}});
  EXPECT_EQ(fault.fire_delay("worker.slow"), milliseconds{0}) << "after=1";
  EXPECT_EQ(fault.fire_delay("worker.slow"), milliseconds{25});
  EXPECT_EQ(fault.fire_delay("never.armed"), milliseconds{0});
}

TEST(FaultInjector, DisarmStopsFiringButKeepsHistory) {
  FaultInjector fault(7);
  fault.arm("a", {});
  EXPECT_TRUE(fault.fire("a"));
  fault.disarm("a");
  EXPECT_FALSE(fault.fire("a"));
  EXPECT_EQ(fault.fires("a"), 1u);
  EXPECT_EQ(fault.event_log(), (std::vector<std::string>{"a#1"}));
  fault.disarm("a");             // idempotent
  fault.disarm("never.armed");   // harmless
}

TEST(FaultInjector, RearmResetsTheHitCounter) {
  FaultInjector fault(7);
  fault.arm("a", {.after = 2});
  EXPECT_FALSE(fault.fire("a"));
  EXPECT_FALSE(fault.fire("a"));
  EXPECT_TRUE(fault.fire("a"));
  fault.arm("a", {.after = 2});  // re-arm: the "first two pass" rule restarts
  EXPECT_FALSE(fault.fire("a"));
  EXPECT_FALSE(fault.fire("a"));
  EXPECT_TRUE(fault.fire("a"));
}

TEST(FaultInjector, ArmSpecGrammar) {
  FaultInjector fault(7);
  fault.arm_spec(
      "worker.crash:p=0.25,after=2,budget=3;"
      "worker.slow:delay_ms=40;"
      "journal.append.torn");
  // journal.append.torn got the bare-name default: p=1, fire every hit.
  EXPECT_TRUE(fault.fire("journal.append.torn"));
  // worker.slow carries its delay.
  EXPECT_EQ(fault.fire_delay("worker.slow"), std::chrono::milliseconds{40});
  // worker.crash honors after=2 regardless of probability.
  EXPECT_FALSE(fault.fire("worker.crash"));
  EXPECT_FALSE(fault.fire("worker.crash"));
}

TEST(FaultInjector, ArmSpecRejectsMalformedInput) {
  FaultInjector fault(7);
  EXPECT_THROW(fault.arm_spec(":p=1"), InvalidArgument);
  EXPECT_THROW(fault.arm_spec("a;;b"), InvalidArgument);
  EXPECT_THROW(fault.arm_spec("a:p"), InvalidArgument);
  EXPECT_THROW(fault.arm_spec("a:p=notanumber"), InvalidArgument);
  EXPECT_THROW(fault.arm_spec("a:p=2"), InvalidArgument);
  EXPECT_THROW(fault.arm_spec("a:bogus=1"), InvalidArgument);
  EXPECT_THROW(fault.arm_spec("a:p=-0.5"), InvalidArgument);
}

}  // namespace
}  // namespace psd::util
