#include "psd/core/planner.hpp"

#include <gtest/gtest.h>

#include "psd/collective/algorithms.hpp"
#include "psd/core/report.hpp"
#include "psd/topo/builders.hpp"

namespace psd::core {
namespace {

CostParams paper_params(TimeNs alpha_r) {
  CostParams p;
  p.alpha = nanoseconds(100);
  p.delta = nanoseconds(100);
  p.alpha_r = alpha_r;
  p.b = gbps(800);
  return p;
}

TEST(Planner, ProducesAllPlans) {
  Planner planner(topo::directed_ring(16, gbps(800)),
                  paper_params(microseconds(10)));
  const auto result =
      planner.plan(collective::halving_doubling_allreduce(16, mib(16)));
  EXPECT_EQ(result.optimal.choice.size(), 8u);
  EXPECT_GE(result.speedup_vs_static(), 1.0 - 1e-9);
  EXPECT_GE(result.speedup_vs_bvn(), 1.0 - 1e-9);
  EXPECT_GE(result.speedup_vs_best_baseline(), 1.0 - 1e-9);
  // Greedy is feasible: never faster than the optimum.
  EXPECT_GE(result.greedy.total_time().ns(),
            result.optimal.total_time().ns() - 1e-6);
}

TEST(Planner, ParallelPlanIdenticalToSerial) {
  // The four strategies are pure functions of the instance and θ is a pure
  // function of each matching, so the parallel execution path must
  // reproduce the serial plan exactly — every choice and every breakdown
  // term.
  const auto base = topo::directed_ring(16, gbps(800));
  const auto sched = collective::halving_doubling_allreduce(16, mib(16));
  Planner serial(base, paper_params(microseconds(10)), {}, {.parallel = false});
  Planner parallel(base, paper_params(microseconds(10)), {}, {.parallel = true});
  const auto rs = serial.plan(sched);
  const auto rp = parallel.plan(sched);

  const auto expect_same = [](const ReconfigPlan& a, const ReconfigPlan& b) {
    ASSERT_EQ(a.choice.size(), b.choice.size());
    for (std::size_t i = 0; i < a.choice.size(); ++i) {
      EXPECT_EQ(a.choice[i], b.choice[i]) << "step " << i;
    }
    EXPECT_EQ(a.total_time().ns(), b.total_time().ns());
    EXPECT_EQ(a.num_reconfigurations, b.num_reconfigurations);
    EXPECT_EQ(a.breakdown.serialization.ns(), b.breakdown.serialization.ns());
    EXPECT_EQ(a.breakdown.reconfiguration.ns(), b.breakdown.reconfiguration.ns());
  };
  expect_same(rs.optimal, rp.optimal);
  expect_same(rs.static_base, rp.static_base);
  expect_same(rs.naive_bvn, rp.naive_bvn);
  expect_same(rs.greedy, rp.greedy);
}

TEST(Planner, ParallelPlanIdenticalToSerialOnNonRingBase) {
  // Torus base: θ goes through the LP/FPTAS ladder instead of the ring
  // closed form — exercises the parallel cache prewarm on the slow path.
  const auto base = topo::torus_2d(4, 4, gbps(800));
  const auto sched = collective::alltoall_transpose(16, mib(4));
  Planner serial(base, paper_params(microseconds(1)), {}, {.parallel = false});
  Planner parallel(base, paper_params(microseconds(1)), {}, {.parallel = true});
  const auto rs = serial.plan(sched);
  const auto rp = parallel.plan(sched);
  EXPECT_EQ(rs.optimal.total_time().ns(), rp.optimal.total_time().ns());
  EXPECT_EQ(rs.greedy.total_time().ns(), rp.greedy.total_time().ns());
  ASSERT_EQ(rs.optimal.choice.size(), rp.optimal.choice.size());
  for (std::size_t i = 0; i < rs.optimal.choice.size(); ++i) {
    EXPECT_EQ(rs.optimal.choice[i], rp.optimal.choice[i]);
  }
}

TEST(Planner, SpeedupDefinitionsConsistent) {
  Planner planner(topo::directed_ring(8, gbps(800)),
                  paper_params(microseconds(1)));
  const auto r = planner.plan(collective::alltoall_transpose(8, mib(8)));
  const double vs_best = r.speedup_vs_best_baseline();
  EXPECT_NEAR(vs_best,
              std::min(r.speedup_vs_static(), r.speedup_vs_bvn()), 1e-12);
}

TEST(Planner, SetParamsKeepsThetaCache) {
  Planner planner(topo::directed_ring(16, gbps(800)),
                  paper_params(microseconds(10)));
  const auto sched = collective::swing_allreduce(16, mib(1));
  (void)planner.plan(sched);
  const auto cached = planner.oracle().cache_size();
  EXPECT_GT(cached, 0u);

  planner.set_params(paper_params(microseconds(100)));
  (void)planner.plan(sched);
  // Same matchings: no new cache entries, only hits.
  EXPECT_EQ(planner.oracle().cache_size(), cached);
  EXPECT_GT(planner.oracle().cache_hits(), 0u);
}

TEST(Planner, SetParamsRejectsBandwidthChange) {
  Planner planner(topo::directed_ring(8, gbps(800)),
                  paper_params(microseconds(10)));
  CostParams p = paper_params(microseconds(10));
  p.b = gbps(400);
  EXPECT_THROW(planner.set_params(p), psd::InvalidArgument);
}

TEST(Planner, InstanceExposesPrecomputedSteps) {
  Planner planner(topo::directed_ring(8, gbps(800)),
                  paper_params(microseconds(10)));
  const auto inst = planner.instance(collective::ring_allreduce(8, mib(1)));
  EXPECT_EQ(inst.num_steps(), 14);
  for (int i = 0; i < inst.num_steps(); ++i) {
    EXPECT_DOUBLE_EQ(inst.step(i).theta_base, 1.0);  // +1 rotations on a ring
    EXPECT_EQ(inst.step(i).ell_base, 1);
  }
}

TEST(Planner, ExtensionsFlowThrough) {
  Planner planner(topo::directed_ring(8, gbps(800)),
                  paper_params(microseconds(10)));
  // Repeated identical matchings: dedup must help the BvN-style plan.
  collective::CollectiveSchedule sched("rep", 8, mib(4), 1,
                                       collective::ChunkSpace::kSegments);
  for (int i = 0; i < 4; ++i) {
    collective::Step st;
    st.matching = topo::Matching::rotation(8, 3);
    st.volume = mib(1);
    sched.add_step(st);
  }
  ModelExtensions dedup;
  dedup.dedup_identical_matchings = true;
  const auto without = planner.plan(sched);
  const auto with = planner.plan(sched, dedup);
  EXPECT_LT(with.naive_bvn.total_time().ns(),
            without.naive_bvn.total_time().ns());
}

TEST(Report, PlanJsonContainsBreakdown) {
  Planner planner(topo::directed_ring(8, gbps(800)),
                  paper_params(microseconds(10)));
  const auto r = planner.plan(collective::swing_allreduce(8, mib(4)));
  const std::string json = to_json(r.optimal);
  EXPECT_NE(json.find("\"choice\":["), std::string::npos);
  EXPECT_NE(json.find("\"breakdown\":{"), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"serialization_ns\":"), std::string::npos);
  // One choice entry per step.
  std::size_t entries = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"base\"", pos)) != std::string::npos; ++pos) {
    ++entries;
  }
  for (std::size_t pos = 0;
       (pos = json.find("\"matched\"", pos)) != std::string::npos; ++pos) {
    ++entries;
  }
  EXPECT_EQ(entries, r.optimal.choice.size());
}

TEST(Report, PlannerResultJsonHasAllPlans) {
  Planner planner(topo::directed_ring(8, gbps(800)),
                  paper_params(microseconds(1)));
  const auto r = planner.plan(collective::alltoall_transpose(8, mib(4)));
  const std::string json = to_json(r);
  for (const char* k : {"\"optimal\":", "\"static\":", "\"naive_bvn\":",
                        "\"greedy\":", "\"speedup_vs_static\":",
                        "\"speedup_vs_bvn\":", "\"speedup_vs_best_baseline\":"}) {
    EXPECT_NE(json.find(k), std::string::npos) << k;
  }
  // Balanced braces (cheap structural sanity).
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace psd::core
