#include "psd/topo/graph.hpp"

#include <gtest/gtest.h>

namespace psd::topo {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g(5);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.max_out_degree(), 0);
  EXPECT_TRUE(g.uniform_capacity());
  EXPECT_DOUBLE_EQ(g.total_capacity().bytes_per_ns(), 0.0);
}

TEST(Graph, AddEdgeAndAdjacency) {
  Graph g(3);
  const EdgeId e0 = g.add_edge(0, 1, gbps(800));
  const EdgeId e1 = g.add_edge(1, 2, gbps(800));
  const EdgeId e2 = g.add_edge(0, 2, gbps(400));
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.edge(e0).src, 0);
  EXPECT_EQ(g.edge(e0).dst, 1);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.in_degree(2), 2);
  EXPECT_EQ(g.out_edges(0).size(), 2u);
  EXPECT_EQ(g.in_edges(1).front(), e0);
  EXPECT_EQ(g.max_out_degree(), 2);
  EXPECT_EQ(g.find_edge(1, 2), e1);
  EXPECT_EQ(g.find_edge(2, 1), -1);
  EXPECT_EQ(g.find_edge(0, 2), e2);
}

TEST(Graph, CapacityQueries) {
  Graph g(2);
  g.add_edge(0, 1, gbps(800));
  EXPECT_TRUE(g.uniform_capacity());
  g.add_edge(1, 0, gbps(400));
  EXPECT_FALSE(g.uniform_capacity());
  EXPECT_DOUBLE_EQ(g.total_capacity().gbps(), 1200.0);
}

TEST(Graph, RejectsInvalidEdges) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(-1, 0, gbps(1)), psd::InvalidArgument);
  EXPECT_THROW(g.add_edge(0, 3, gbps(1)), psd::InvalidArgument);
  EXPECT_THROW(g.add_edge(1, 1, gbps(1)), psd::InvalidArgument);  // self-loop
  EXPECT_THROW(g.add_edge(0, 1, gbps(0)), psd::InvalidArgument);  // zero cap
  EXPECT_THROW(g.add_edge(0, 1, gbps(-5)), psd::InvalidArgument);
}

TEST(Graph, ParallelEdgesAllowed) {
  Graph g(2);
  g.add_edge(0, 1, gbps(100));
  g.add_edge(0, 1, gbps(100));
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.out_degree(0), 2);
}

TEST(Graph, NegativeNodeCountRejected) {
  EXPECT_THROW(Graph(-1), psd::InvalidArgument);
}

TEST(Graph, ToStringMentionsEdges) {
  Graph g(2);
  g.add_edge(0, 1, gbps(800));
  const std::string s = g.to_string();
  EXPECT_NE(s.find("0 -> 1"), std::string::npos);
  EXPECT_NE(s.find("800 Gbps"), std::string::npos);
}

}  // namespace
}  // namespace psd::topo
