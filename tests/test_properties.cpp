#include "psd/topo/properties.hpp"

#include <gtest/gtest.h>

#include "psd/topo/builders.hpp"

namespace psd::topo {
namespace {

TEST(Properties, StrongConnectivity) {
  EXPECT_TRUE(is_strongly_connected(directed_ring(5, gbps(1))));
  EXPECT_TRUE(is_strongly_connected(full_mesh(4, gbps(1))));
  Graph g(3);
  g.add_edge(0, 1, gbps(1));
  g.add_edge(1, 2, gbps(1));
  EXPECT_FALSE(is_strongly_connected(g));  // no way back to 0
  EXPECT_TRUE(is_strongly_connected(Graph(1)));
}

TEST(Properties, Diameter) {
  EXPECT_EQ(diameter(directed_ring(6, gbps(1))), 5);
  EXPECT_EQ(diameter(bidirectional_ring(6, gbps(1))), 3);
  EXPECT_EQ(diameter(full_mesh(4, gbps(1))), 1);
  EXPECT_EQ(diameter(hypercube(4, gbps(1))), 4);
  Graph disconnected(2);
  EXPECT_THROW((void)diameter(disconnected), psd::InvalidArgument);
}

TEST(Properties, MaxPairHopsOnDirectedRing) {
  const Graph g = directed_ring(8, gbps(1));
  // Rotation by 3: every pair at clockwise distance 3.
  EXPECT_EQ(max_pair_hops(g, Matching::rotation(8, 3)), 3);
  // Pairwise exchange at distance 1: the reverse direction goes the long way.
  const Matching ex = Matching::from_pairs(8, {{0, 1}, {1, 0}});
  EXPECT_EQ(max_pair_hops(g, ex), 7);
  EXPECT_EQ(max_pair_hops(g, Matching(8)), 0);  // empty
}

TEST(Properties, MaxPairHopsOnBidirectionalRing) {
  const Graph g = bidirectional_ring(8, gbps(1));
  EXPECT_EQ(max_pair_hops(g, Matching::rotation(8, 3)), 3);
  EXPECT_EQ(max_pair_hops(g, Matching::rotation(8, 5)), 3);  // shorter way round
}

TEST(Properties, TotalPairHops) {
  const Graph g = directed_ring(6, gbps(1));
  EXPECT_EQ(total_pair_hops(g, Matching::rotation(6, 2)), 6 * 2);
  const Matching ex = Matching::from_pairs(6, {{0, 2}, {2, 0}});
  EXPECT_EQ(total_pair_hops(g, ex), 2 + 4);
}

TEST(Properties, DisconnectedPairThrows) {
  Graph g(3);
  g.add_edge(0, 1, gbps(1));
  const Matching m = Matching::from_pairs(3, {{0, 2}});
  EXPECT_THROW((void)max_pair_hops(g, m), psd::InvalidArgument);
  EXPECT_THROW((void)total_pair_hops(g, m), psd::InvalidArgument);
}

TEST(Properties, MatchesTopology) {
  const Matching m = Matching::from_pairs(4, {{0, 1}, {1, 0}});
  EXPECT_TRUE(matches_topology(matched_topology(m, gbps(1)), m));
  EXPECT_TRUE(matches_topology(full_mesh(4, gbps(1)), m));
  EXPECT_FALSE(matches_topology(directed_ring(4, gbps(1)), m));  // 1->0 missing
  EXPECT_TRUE(matches_topology(directed_ring(4, gbps(1)), Matching::rotation(4, 1)));
}

TEST(Properties, SizeMismatchThrows) {
  const Graph g = directed_ring(4, gbps(1));
  EXPECT_THROW((void)max_pair_hops(g, Matching(5)), psd::InvalidArgument);
  EXPECT_THROW((void)matches_topology(g, Matching(3)), psd::InvalidArgument);
}

}  // namespace
}  // namespace psd::topo
