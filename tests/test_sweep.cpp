// Sweep subsystem: grid expansion, spec parsing, driver determinism
// (serial == parallel, shared == per-planner rows), cache-mode hit-rate
// comparison, and the docs/sweep.md worked example pinned verbatim.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "psd/sweep/driver.hpp"
#include "psd/util/error.hpp"
#include "psd/util/json.hpp"

namespace {

using namespace psd;
using sweep::CollectiveSpec;
using sweep::ScenarioGrid;
using sweep::TopologyKind;
using workload::AllReduceAlgo;
using workload::AllToAllAlgo;
using workload::CollectiveKind;

core::CostParams cost(double alpha_r_ns) {
  core::CostParams p;
  p.alpha = nanoseconds(100);
  p.delta = nanoseconds(100);
  p.alpha_r = nanoseconds(alpha_r_ns);
  p.b = gbps(800);
  return p;
}

/// ring+hypercube grid with heavy θ overlap across sizes and α_r values.
ScenarioGrid overlap_grid() {
  ScenarioGrid grid;
  grid.topologies = {TopologyKind::kDirectedRing, TopologyKind::kHypercube};
  grid.node_counts = {8};
  grid.collectives = {
      CollectiveSpec{.kind = CollectiveKind::kAllReduce,
                     .allreduce = AllReduceAlgo::kSwing},
      CollectiveSpec{.kind = CollectiveKind::kAllReduce,
                     .allreduce = AllReduceAlgo::kHalvingDoubling},
      CollectiveSpec{.kind = CollectiveKind::kAllGather},
  };
  grid.message_sizes = {mib(1), mib(16)};
  grid.cost_params = {cost(100.0), cost(10000.0)};
  return grid;
}

// ---- Expansion -----------------------------------------------------------

TEST(ScenarioGrid, ExpandsInFixedNestingOrder) {
  ScenarioGrid grid;
  grid.topologies = {TopologyKind::kDirectedRing, TopologyKind::kFullMesh};
  grid.node_counts = {4, 8};
  grid.collectives = {CollectiveSpec{.kind = CollectiveKind::kAllReduce,
                                     .allreduce = AllReduceAlgo::kRing}};
  grid.message_sizes = {mib(1), mib(2)};
  grid.cost_params = {cost(100.0), cost(10000.0)};
  std::size_t skipped = 123;
  const auto scenarios = sweep::expand(grid, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(scenarios.size(), 16u);
  // Innermost axis first: cost, then size, then nodes, then topology.
  EXPECT_EQ(scenarios[0].id(), "ring/n4/allreduce:ring/1048576B/c0");
  EXPECT_EQ(scenarios[1].id(), "ring/n4/allreduce:ring/1048576B/c1");
  EXPECT_EQ(scenarios[2].id(), "ring/n4/allreduce:ring/2097152B/c0");
  EXPECT_EQ(scenarios[4].id(), "ring/n8/allreduce:ring/1048576B/c0");
  EXPECT_EQ(scenarios[8].id(), "mesh/n4/allreduce:ring/1048576B/c0");
  EXPECT_EQ(scenarios[15].id(), "mesh/n8/allreduce:ring/2097152B/c1");
}

TEST(ScenarioGrid, SkipsInvalidCombinationsDeterministically) {
  ScenarioGrid grid;
  grid.topologies = {TopologyKind::kHypercube};
  grid.node_counts = {6, 8};  // 6 is not a power of two
  grid.collectives = {CollectiveSpec{.kind = CollectiveKind::kAllGather}};
  grid.message_sizes = {mib(1), mib(2)};
  grid.cost_params = {cost(100.0)};
  std::size_t skipped = 0;
  const auto scenarios = sweep::expand(grid, &skipped);
  EXPECT_EQ(scenarios.size(), 2u);  // n=8 only
  EXPECT_EQ(skipped, 2u);           // n=6 x 2 sizes x 1 cost
}

TEST(ScenarioValidity, PowerOfTwoAndFactorizationRules) {
  const CollectiveSpec ring_ar{.kind = CollectiveKind::kAllReduce,
                               .allreduce = AllReduceAlgo::kRing};
  const CollectiveSpec swing_ar{.kind = CollectiveKind::kAllReduce,
                                .allreduce = AllReduceAlgo::kSwing};
  const CollectiveSpec bruck{.kind = CollectiveKind::kAllToAll,
                             .alltoall = AllToAllAlgo::kBruck};
  const CollectiveSpec transpose{.kind = CollectiveKind::kAllToAll,
                                 .alltoall = AllToAllAlgo::kTranspose};
  // Recursive algorithms need power-of-two n; ring/transpose do not.
  EXPECT_TRUE(sweep::scenario_valid(TopologyKind::kDirectedRing, 6, ring_ar));
  EXPECT_FALSE(sweep::scenario_valid(TopologyKind::kDirectedRing, 6, swing_ar));
  EXPECT_FALSE(sweep::scenario_valid(TopologyKind::kDirectedRing, 6, bruck));
  EXPECT_TRUE(sweep::scenario_valid(TopologyKind::kDirectedRing, 6, transpose));
  // Hypercube needs power-of-two n regardless of collective.
  EXPECT_FALSE(sweep::scenario_valid(TopologyKind::kHypercube, 6, ring_ar));
  EXPECT_TRUE(sweep::scenario_valid(TopologyKind::kHypercube, 8, swing_ar));
  // Torus needs a rows x cols factorization with both sides >= 2.
  EXPECT_FALSE(sweep::scenario_valid(TopologyKind::kTorus2D, 7, ring_ar));
  EXPECT_TRUE(sweep::scenario_valid(TopologyKind::kTorus2D, 6, ring_ar));
  // Nothing plans on fewer than 2 nodes.
  EXPECT_FALSE(sweep::scenario_valid(TopologyKind::kDirectedRing, 1, ring_ar));
}

TEST(ScenarioGrid, BuildTopologyMatchesKind) {
  EXPECT_EQ(sweep::build_topology(TopologyKind::kTorus2D, 12, gbps(800)).num_nodes(),
            12);
  EXPECT_EQ(sweep::build_topology(TopologyKind::kHypercube, 16, gbps(800))
                .num_edges(),
            16 * 4 /*dim*/);
  EXPECT_EQ(sweep::build_topology(TopologyKind::kFullMesh, 5, gbps(800)).num_edges(),
            5 * 4);
}

// ---- Spec parsing --------------------------------------------------------

TEST(GridSpec, ParsesAxesSuffixesAndDefaults) {
  const auto grid = sweep::parse_grid_spec(
      "# comment\n"
      "topology = ring, torus   # trailing comment\n"
      "nodes = 8, 12\n"
      "collective = allreduce:swing, alltoall:bruck, allgather\n"
      "size = 512B, 64KiB, 4MiB, 1GiB, 1000\n"
      "alpha_r_ns = 100, 10000\n");
  ASSERT_EQ(grid.topologies.size(), 2u);
  EXPECT_EQ(grid.topologies[1], TopologyKind::kTorus2D);
  ASSERT_EQ(grid.node_counts.size(), 2u);
  ASSERT_EQ(grid.collectives.size(), 3u);
  EXPECT_EQ(grid.collectives[0].allreduce, AllReduceAlgo::kSwing);
  EXPECT_EQ(grid.collectives[1].alltoall, AllToAllAlgo::kBruck);
  EXPECT_EQ(grid.collectives[2].kind, CollectiveKind::kAllGather);
  ASSERT_EQ(grid.message_sizes.size(), 5u);
  EXPECT_EQ(grid.message_sizes[0].count(), 512.0);
  EXPECT_EQ(grid.message_sizes[1].count(), 64.0 * 1024.0);
  EXPECT_EQ(grid.message_sizes[2].count(), 4.0 * 1024.0 * 1024.0);
  EXPECT_EQ(grid.message_sizes[3].count(), 1024.0 * 1024.0 * 1024.0);
  EXPECT_EQ(grid.message_sizes[4].count(), 1000.0);
  ASSERT_EQ(grid.cost_params.size(), 2u);
  EXPECT_EQ(grid.cost_params[0].alpha_r.ns(), 100.0);
  EXPECT_EQ(grid.cost_params[1].alpha_r.ns(), 10000.0);
  // Defaults for the unspecified scalars.
  EXPECT_EQ(grid.cost_params[0].alpha.ns(), 100.0);
  EXPECT_EQ(grid.cost_params[0].delta.ns(), 100.0);
  EXPECT_EQ(grid.cost_params[0].b.gbps(), 800.0);
}

TEST(GridSpec, RejectsMalformedInput) {
  EXPECT_THROW(sweep::parse_grid_spec("nonsense line\n"), InvalidArgument);
  EXPECT_THROW(sweep::parse_grid_spec("frobnicate = 3\n"), InvalidArgument);
  EXPECT_THROW(sweep::parse_grid_spec("topology = klein-bottle\n"), InvalidArgument);
  EXPECT_THROW(sweep::parse_grid_spec("nodes = eight\n"), InvalidArgument);
  EXPECT_THROW(sweep::parse_grid_spec("collective = allgather:bruck\n"),
               InvalidArgument);
  EXPECT_THROW(sweep::parse_grid_spec("size = -4MiB\n"), InvalidArgument);
  // Negative delays would reward the DP per reconfiguration.
  EXPECT_THROW(sweep::parse_grid_spec("alpha_r_ns = -10000\n"), InvalidArgument);
  EXPECT_THROW(sweep::parse_grid_spec("alpha_ns = -1\n"), InvalidArgument);
  // Scalar keys must not silently drop list entries.
  EXPECT_THROW(sweep::parse_grid_spec("bandwidth_gbps = 400, 800\n"),
               InvalidArgument);
  EXPECT_THROW(sweep::parse_grid_spec("alpha_ns = 100, 200\n"), InvalidArgument);
  // Repeated keys would either duplicate scenarios or silently override.
  EXPECT_THROW(sweep::parse_grid_spec("size = 1MiB\nsize = 16MiB\n"),
               InvalidArgument);
  EXPECT_THROW(sweep::parse_grid_spec("topology = ring\nnodes = 8\n"
                                      "collective = allgather\n"),
               InvalidArgument);  // missing size
  EXPECT_THROW(sweep::parse_grid_spec(""), InvalidArgument);
}

TEST(GridSpec, ParsesAutoCollectivesAndShortSuffixes) {
  const auto grid = sweep::parse_grid_spec(
      "topology = ring\n"
      "nodes = 8\n"
      "collective = allreduce:auto, alltoall:auto\n"
      "size = 4K, 2M, 1G\n");
  ASSERT_EQ(grid.collectives.size(), 2u);
  EXPECT_EQ(grid.collectives[0].kind, CollectiveKind::kAllReduce);
  EXPECT_EQ(grid.collectives[0].allreduce, AllReduceAlgo::kAuto);
  EXPECT_EQ(grid.collectives[1].kind, CollectiveKind::kAllToAll);
  EXPECT_EQ(grid.collectives[1].alltoall, AllToAllAlgo::kAuto);
  // The single-letter binary suffixes (K/M/G == KiB/MiB/GiB).
  ASSERT_EQ(grid.message_sizes.size(), 3u);
  EXPECT_EQ(grid.message_sizes[0].count(), 4096.0);
  EXPECT_EQ(grid.message_sizes[1].count(), 2.0 * 1024.0 * 1024.0);
  EXPECT_EQ(grid.message_sizes[2].count(), 1024.0 * 1024.0 * 1024.0);
}

TEST(GridSpec, ParsesLogSpacedSizeRanges) {
  // lo..hi expands to lo·4^k with the upper bound appended when the
  // progression misses it exactly.
  const auto grid = sweep::parse_grid_spec(
      "topology = ring\nnodes = 8\ncollective = allgather\n"
      "size = 4K..1G\n");
  ASSERT_EQ(grid.message_sizes.size(), 10u);
  for (std::size_t i = 0; i < grid.message_sizes.size(); ++i) {
    EXPECT_DOUBLE_EQ(grid.message_sizes[i].count(),
                     4096.0 * std::pow(4.0, static_cast<double>(i)));
  }

  const auto offgrid = sweep::parse_grid_spec(
      "topology = ring\nnodes = 8\ncollective = allgather\n"
      "size = 1KiB..10KiB\n");
  ASSERT_EQ(offgrid.message_sizes.size(), 3u);
  EXPECT_DOUBLE_EQ(offgrid.message_sizes[0].count(), 1024.0);
  EXPECT_DOUBLE_EQ(offgrid.message_sizes[1].count(), 4096.0);
  EXPECT_DOUBLE_EQ(offgrid.message_sizes[2].count(), 10.0 * 1024.0);

  // A degenerate range is the single point; ranges mix with plain sizes.
  const auto mixed = sweep::parse_grid_spec(
      "topology = ring\nnodes = 8\ncollective = allgather\n"
      "size = 512B, 4K..64K\n");
  ASSERT_EQ(mixed.message_sizes.size(), 4u);
  EXPECT_DOUBLE_EQ(mixed.message_sizes[0].count(), 512.0);
  EXPECT_DOUBLE_EQ(mixed.message_sizes[3].count(), 65536.0);

  EXPECT_THROW(sweep::parse_grid_spec(
                   "topology = ring\nnodes = 8\ncollective = allgather\n"
                   "size = 1G..4K\n"),
               InvalidArgument);  // descending range
}

TEST(GridSpec, ParsesExtensionsAxis) {
  const auto grid = sweep::parse_grid_spec(
      "topology = ring\nnodes = 8\ncollective = allgather\nsize = 1MiB\n"
      "extensions = none, dedup\n");
  ASSERT_EQ(grid.extensions.size(), 2u);
  EXPECT_FALSE(grid.extensions[0].dedup_identical_matchings);
  EXPECT_TRUE(grid.extensions[1].dedup_identical_matchings);

  // Unspecified: empty axis, expand() treats it as {none} so legacy
  // scenario ids are untouched.
  const auto bare = sweep::parse_grid_spec(
      "topology = ring\nnodes = 8\ncollective = allgather\nsize = 1MiB\n");
  EXPECT_TRUE(bare.extensions.empty());

  EXPECT_THROW(sweep::parse_grid_spec(
                   "topology = ring\nnodes = 8\ncollective = allgather\n"
                   "size = 1MiB\nextensions = frobnicate\n"),
               InvalidArgument);
}

TEST(ScenarioGrid, ExtensionsAxisExpandsAndSuffixesIds) {
  ScenarioGrid grid;
  grid.topologies = {TopologyKind::kDirectedRing};
  grid.node_counts = {4};
  grid.collectives = {CollectiveSpec{.kind = CollectiveKind::kAllGather}};
  grid.message_sizes = {mib(1)};
  grid.cost_params = {cost(100.0)};
  grid.extensions = {sweep::ExtensionSpec{},
                     sweep::ExtensionSpec{.dedup_identical_matchings = true}};
  const auto scenarios = sweep::expand(grid);
  ASSERT_EQ(scenarios.size(), 2u);
  // Default extensions leave the id untouched (legacy ids stay stable);
  // non-default ones get the "/x" suffix before any churn suffix.
  EXPECT_EQ(scenarios[0].id(), "ring/n4/allgather/1048576B/c0");
  EXPECT_EQ(scenarios[1].id(), "ring/n4/allgather/1048576B/c0/xdedup");
}

// ---- Explicit torus shapes -----------------------------------------------

TEST(TorusSpec, ParsesAndPrintsExplicitShapes) {
  const auto spec = sweep::topology_spec_from_string("torus4x8");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->kind, TopologyKind::kTorus2D);
  EXPECT_EQ(spec->rows, 4);
  EXPECT_EQ(spec->cols, 8);
  EXPECT_EQ(sweep::to_string(*spec), "torus4x8");
  // Plain names still parse to default (auto-factored) specs.
  const auto plain = sweep::topology_spec_from_string("torus");
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->rows, 0);
  EXPECT_EQ(sweep::to_string(*plain), "torus");
  EXPECT_EQ(sweep::to_string(sweep::TopologySpec(TopologyKind::kHypercube)),
            "hypercube");
}

TEST(TorusSpec, RejectsMalformedShapes) {
  for (const char* bad : {"torus4x", "torusx8", "torus0x8", "torus4x1",
                          "torus-4x8", "torus4x8x2", "torus4*8", "torusAxB",
                          "torus 4x8"}) {
    EXPECT_FALSE(sweep::topology_spec_from_string(bad).has_value()) << bad;
  }
  // The grid parser surfaces the rejection with the offending line.
  EXPECT_THROW(sweep::parse_grid_spec("topology = torus4x\n"), InvalidArgument);
  EXPECT_THROW(sweep::parse_grid_spec("topology = torus0x8\n"), InvalidArgument);
}

TEST(TorusSpec, ExplicitShapeBuildsRectangularTorus) {
  const sweep::TopologySpec spec(TopologyKind::kTorus2D, 4, 8);
  const auto g = sweep::build_topology(spec, 32, gbps(800));
  EXPECT_EQ(g.num_nodes(), 32);
  EXPECT_EQ(g.num_edges(), 32 * 4);  // 2D torus: 4 links per node
  // The default spec factors 32 near-square (4x8 happens to coincide), but
  // a mismatched node count must throw rather than silently refactor.
  EXPECT_THROW((void)sweep::build_topology(spec, 36, gbps(800)),
               psd::InvalidArgument);
}

TEST(TorusSpec, ExplicitShapeOnlyMatchesItsNodeCount) {
  const CollectiveSpec ring_ar{.kind = CollectiveKind::kAllReduce,
                               .allreduce = AllReduceAlgo::kRing};
  const sweep::TopologySpec shaped(TopologyKind::kTorus2D, 4, 8);
  EXPECT_TRUE(sweep::scenario_valid(shaped, 32, ring_ar));
  EXPECT_FALSE(sweep::scenario_valid(shaped, 16, ring_ar));
  EXPECT_FALSE(sweep::scenario_valid(shaped, 36, ring_ar));
  // Rectangular tori unlock shapes the near-square default would not pick:
  // 2x16 for n=32.
  const sweep::TopologySpec flat(TopologyKind::kTorus2D, 2, 16);
  EXPECT_TRUE(sweep::scenario_valid(flat, 32, ring_ar));
  EXPECT_EQ(sweep::build_topology(flat, 32, gbps(800)).num_nodes(), 32);
}

TEST(TorusSpec, GridExpansionSkipsMismatchedNodeCounts) {
  const auto grid = sweep::parse_grid_spec(
      "topology = torus2x8, torus4x8\n"
      "nodes = 16, 32\n"
      "collective = allgather\n"
      "size = 1MiB\n");
  std::size_t skipped = 0;
  const auto scenarios = sweep::expand(grid, &skipped);
  // torus2x8 matches n=16 only; torus4x8 matches n=32 only.
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(skipped, 2u);
  EXPECT_EQ(scenarios[0].id(), "torus2x8/n16/allgather/1048576B/c0");
  EXPECT_EQ(scenarios[1].id(), "torus4x8/n32/allgather/1048576B/c0");
}

TEST(TorusSpec, SweepRunsOnExplicitRectangularTorus) {
  const auto grid = sweep::parse_grid_spec(
      "topology = torus2x8\n"
      "nodes = 16\n"
      "collective = allgather\n"
      "size = 1MiB\n");
  const auto report = sweep::run_sweep(grid, sweep::SweepOptions{});
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].scenario.id(), "torus2x8/n16/allgather/1048576B/c0");
  EXPECT_GT(report.rows[0].steps, 0);
}

// ---- Driver determinism and cache modes ----------------------------------

TEST(SweepDriver, RowsComeBackInInputOrder) {
  const auto scenarios = sweep::expand(overlap_grid());
  const auto report = sweep::run_sweep(scenarios, sweep::SweepOptions{});
  ASSERT_EQ(report.rows.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(report.rows[i].scenario.id(), scenarios[i].id());
    EXPECT_GT(report.rows[i].steps, 0);
    EXPECT_GE(report.rows[i].result.speedup_vs_static(), 1.0);
    EXPECT_GE(report.rows[i].result.speedup_vs_bvn(), 1.0);
  }
}

TEST(SweepDriver, ParallelReportBytesEqualSerialReport) {
  const auto grid = overlap_grid();
  for (const bool shared : {false, true}) {
    sweep::SweepOptions serial;
    serial.parallel = false;
    sweep::SweepOptions parallel;
    parallel.parallel = true;
    parallel.threads = 4;  // real workers even on a single-core box
    if (shared) {
      serial.shared_cache = sweep::make_shared_theta_cache();
      parallel.shared_cache = sweep::make_shared_theta_cache();
    }
    const auto a = sweep::run_sweep(grid, serial);
    const auto b = sweep::run_sweep(grid, parallel);
    // The deterministic artifacts: CSV always, JSON minus cache counters
    // (shared-cache counters legitimately depend on interleaving).
    EXPECT_EQ(sweep::to_csv(a), sweep::to_csv(b)) << "shared=" << shared;
    EXPECT_EQ(sweep::to_json(a, /*include_cache_stats=*/false),
              sweep::to_json(b, /*include_cache_stats=*/false))
        << "shared=" << shared;
  }
}

TEST(SweepDriver, SharedCacheViaThetaOptionsFieldIsHonored) {
  // A cache handed in through theta.shared_cache (instead of the dedicated
  // SweepOptions field) must still be recognized: shared mode reported,
  // counters read from that cache, not a bogus all-zero per-planner block.
  const auto grid = overlap_grid();
  sweep::SweepOptions options;
  options.parallel = false;
  options.theta.shared_cache = sweep::make_shared_theta_cache();
  const auto report = sweep::run_sweep(grid, options);
  EXPECT_EQ(report.cache_mode, sweep::CacheMode::kShared);
  EXPECT_GT(report.cache.hits, 0u);
  EXPECT_GT(report.cache.entries, 0u);
}

TEST(SweepDriver, CacheModeDoesNotChangeResults) {
  const auto grid = overlap_grid();
  sweep::SweepOptions per_planner;
  per_planner.parallel = false;
  sweep::SweepOptions shared;
  shared.parallel = false;
  shared.shared_cache = sweep::make_shared_theta_cache();
  EXPECT_EQ(sweep::to_csv(sweep::run_sweep(grid, per_planner)),
            sweep::to_csv(sweep::run_sweep(grid, shared)));
}

TEST(SweepDriver, SharedCacheHitRateBeatsPerPlannerCaches) {
  // The acceptance comparison: on a grid whose scenarios ask overlapping θ
  // questions, one shared memo turns the other tenants' misses into hits.
  const auto grid = overlap_grid();
  sweep::SweepOptions per_planner;
  per_planner.parallel = false;
  const auto private_report = sweep::run_sweep(grid, per_planner);

  sweep::SweepOptions shared;
  shared.parallel = false;
  shared.shared_cache = sweep::make_shared_theta_cache();
  const auto shared_report = sweep::run_sweep(grid, shared);

  EXPECT_EQ(private_report.cache_mode, sweep::CacheMode::kPerPlanner);
  EXPECT_EQ(shared_report.cache_mode, sweep::CacheMode::kShared);
  // Same questions asked either way...
  EXPECT_EQ(shared_report.cache.hits + shared_report.cache.misses,
            private_report.cache.hits + private_report.cache.misses);
  // ...but the shared cache answers far more of them from memory: misses
  // are exact solves, so this is the "solves saved" headline.
  EXPECT_GT(shared_report.cache.hit_rate(), private_report.cache.hit_rate());
  EXPECT_LT(shared_report.cache.misses, private_report.cache.misses / 2);
}

TEST(SweepDocs, WorkedExampleMatchesDocsVerbatim) {
  // The exact spec and CSV shown in docs/sweep.md "Worked example". If this
  // fails, the planner/cost-model/report behavior changed — update the doc
  // together with this golden.
  const auto grid = sweep::parse_grid_spec(
      "topology = ring\n"
      "nodes = 8\n"
      "collective = allreduce:swing\n"
      "size = 4MiB\n"
      "alpha_ns = 100\n"
      "delta_ns = 100\n"
      "alpha_r_ns = 100, 10000\n"
      "bandwidth_gbps = 800\n");
  sweep::SweepOptions options;
  // Serial: the CSV is interleaving-independent anyway, but the doc also
  // quotes the cache counters, which are only deterministic serially.
  options.parallel = false;
  options.shared_cache = sweep::make_shared_theta_cache();
  const auto report = sweep::run_sweep(grid, options);
  const std::string expected =
      "id,topology,nodes,collective,message_bytes,alpha_ns,delta_ns,"
      "alpha_r_ns,bandwidth_gbps,steps,optimal_ns,static_ns,naive_bvn_ns,"
      "greedy_ns,reconfigurations,speedup_vs_static,speedup_vs_bvn,"
      "speedup_vs_best\n"
      "ring/n8/allreduce:swing/4194304B/c0,ring,8,allreduce:swing,4194304,"
      "100,100,100,800,6,75200.319999999992,298001.27999999997,"
      "75200.319999999992,75200.319999999992,6,3.9627661158888685,1,1\n"
      "ring/n8/allreduce:swing/4194304B/c1,ring,8,allreduce:swing,4194304,"
      "100,100,10000,800,6,134600.32000000001,298001.27999999997,"
      "134600.32000000001,134600.32000000001,6,2.2139715566798053,1,1\n";
  EXPECT_EQ(sweep::to_csv(report), expected);
  // The cache-counter story told by the doc: 3 distinct step matchings
  // solved once, 21 further lookups served from memory (the planner's
  // instance build plus the pipelined-pricing instance, both all-hits after
  // the first scenario's misses).
  EXPECT_EQ(report.cache.misses, 3u);
  EXPECT_EQ(report.cache.hits, 21u);
}

TEST(SweepDriver, JsonReportHasSchemaAndCacheBlock) {
  ScenarioGrid grid;
  grid.topologies = {TopologyKind::kDirectedRing};
  grid.node_counts = {4};
  grid.collectives = {CollectiveSpec{.kind = CollectiveKind::kAllReduce,
                                     .allreduce = AllReduceAlgo::kRing}};
  grid.message_sizes = {mib(1)};
  grid.cost_params = {cost(10000.0)};
  sweep::SweepOptions options;
  options.parallel = false;
  options.shared_cache = sweep::make_shared_theta_cache();
  const auto report = sweep::run_sweep(grid, options);
  const auto json = sweep::to_json(report);
  EXPECT_NE(json.find("\"schema\":\"psd-sweep-report-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":["), std::string::npos);
  EXPECT_NE(json.find("\"cache\":{\"mode\":\"shared\""), std::string::npos);
  EXPECT_NE(json.find("\"hit_rate\":"), std::string::npos);
  const auto without = sweep::to_json(report, /*include_cache_stats=*/false);
  EXPECT_EQ(without.find("\"cache\""), std::string::npos);
}

// ---- Pipelined pricing and algo=auto rows --------------------------------

TEST(SweepDriver, RowsCarryPipelinedPricingAndChosenAlgo) {
  const auto grid = sweep::parse_grid_spec(
      "topology = ring\n"
      "nodes = 8\n"
      "collective = allreduce:auto, allreduce:hd\n"
      "size = 4K, 64M\n"
      "alpha_r_ns = 10000\n");
  sweep::SweepOptions options;
  options.parallel = false;
  const auto report = sweep::run_sweep(grid, options);
  ASSERT_EQ(report.rows.size(), 4u);
  for (const auto& row : report.rows) {
    ASSERT_FALSE(row.error.has_value()) << row.scenario.id();
    // A single chunk is always swept, so the pipelined price never exceeds
    // the barrier optimum.
    EXPECT_GT(row.pipelined.ns(), 0.0) << row.scenario.id();
    EXPECT_LE(row.pipelined.ns(),
              row.result.optimal.total_time().ns() * (1 + 1e-9))
        << row.scenario.id();
    EXPECT_GE(row.pipeline_chunks, 1) << row.scenario.id();
  }
  // chosen_algo is filled exactly on the auto rows, and never "auto".
  EXPECT_EQ(report.rows[0].chosen_algo, "rd");    // 4 KiB: threshold fallback
  EXPECT_EQ(report.rows[1].chosen_algo, "ring");  // 64 MiB: cost-swept winner
  EXPECT_TRUE(report.rows[2].chosen_algo.empty());
  EXPECT_TRUE(report.rows[3].chosen_algo.empty());

  // The JSON report carries the new fields (the CSV schema is frozen and
  // must not grow them).
  const auto doc = parse_json(sweep::to_json(report));
  const auto& rows = doc.find("rows")->as_array();
  ASSERT_NE(rows[0].find("pipelined_ns"), nullptr);
  ASSERT_NE(rows[0].find("pipeline_chunks"), nullptr);
  ASSERT_NE(rows[0].find("chosen_algo"), nullptr);
  EXPECT_EQ(rows[0].find("chosen_algo")->as_string(), "rd");
  EXPECT_EQ(rows[2].find("chosen_algo"), nullptr);
  const auto csv_header = sweep::to_csv(report).substr(
      0, sweep::to_csv(report).find('\n'));
  EXPECT_EQ(csv_header.find("pipelined"), std::string::npos);
  EXPECT_EQ(csv_header.find("chosen_algo"), std::string::npos);
}

// The dedup extension rides per scenario: on a schedule with repeated
// matchings it lowers (or keeps) the naive-BvN baseline, and the axis is
// what distinguishes the two rows' ids.
TEST(SweepDriver, ExtensionAxisChangesModelPerRow) {
  const auto grid = sweep::parse_grid_spec(
      "topology = ring\n"
      "nodes = 8\n"
      "collective = allreduce:ring\n"
      "size = 1MiB\n"
      "alpha_r_ns = 10000\n"
      "extensions = none, dedup\n");
  sweep::SweepOptions options;
  options.parallel = false;
  const auto report = sweep::run_sweep(grid, options);
  ASSERT_EQ(report.rows.size(), 2u);
  const auto& plain = report.rows[0];
  const auto& dedup = report.rows[1];
  ASSERT_FALSE(plain.error.has_value());
  ASSERT_FALSE(dedup.error.has_value());
  EXPECT_EQ(dedup.scenario.id(), plain.scenario.id() + "/xdedup");
  // Ring allreduce reuses one rotation matching across all 2(n-1) steps:
  // dedup charges its reconfiguration once instead of per step.
  EXPECT_LT(dedup.result.naive_bvn.total_time().ns(),
            plain.result.naive_bvn.total_time().ns());
}

// ---- Per-row error containment ------------------------------------------

TEST(SweepDriver, BrokenScenarioYieldsErrorRowNotAbort) {
  auto scenarios = sweep::expand(overlap_grid());
  ASSERT_GE(scenarios.size(), 2u);
  sweep::Scenario bad = scenarios[0];
  bad.message = Bytes(0.0);  // materialize() rejects non-positive sizes
  scenarios.insert(scenarios.begin() + 1, bad);

  for (const bool parallel : {false, true}) {
    sweep::SweepOptions options;
    options.parallel = parallel;
    const auto report = sweep::run_sweep(scenarios, options);
    ASSERT_EQ(report.rows.size(), scenarios.size());
    const auto& row = report.rows[1];
    ASSERT_TRUE(row.error.has_value()) << "parallel=" << parallel;
    EXPECT_NE(row.error->find("positive"), std::string::npos) << *row.error;
    EXPECT_EQ(row.steps, 0);
    for (std::size_t i = 0; i < report.rows.size(); ++i) {
      if (i == 1) continue;
      EXPECT_FALSE(report.rows[i].error.has_value())
          << "row " << i << " parallel=" << parallel;
      EXPECT_GT(report.rows[i].steps, 0);
    }
  }
}

TEST(SweepDriver, ErrorRowsSerializeAsValidArtifacts) {
  auto scenarios = sweep::expand(overlap_grid());
  scenarios.resize(2);
  scenarios[1].message = Bytes(0.0);
  sweep::SweepOptions options;
  options.parallel = false;
  const auto report = sweep::run_sweep(scenarios, options);

  // JSON stays parseable: the broken row carries "error" and its 0/0
  // speedup ratios are rendered as 0, never nan (invalid JSON).
  const auto json = sweep::to_json(report);
  const auto doc = parse_json(json);
  const auto& rows = doc.find("rows")->as_array();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].find("error"), nullptr);
  ASSERT_NE(rows[1].find("error"), nullptr);
  EXPECT_NE(rows[1].find("error")->as_string().find("positive"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(rows[1].find("speedup_vs_static")->as_number(), 0.0);

  // The frozen CSV schema carries zeros for the broken row — and no nan.
  const auto csv = sweep::to_csv(report);
  EXPECT_EQ(csv.find("nan"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2 rows

  // The human table flags the failure instead of printing zeros as data.
  EXPECT_NE(sweep::to_table(report).find("FAILED"), std::string::npos);
}

}  // namespace
