#include "psd/util/table.hpp"

#include <gtest/gtest.h>

namespace psd {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"msg", "speedup"});
  t.add_row({"1 KiB", "1.00"});
  t.add_row({"256 MiB", "120"});
  const std::string out = t.render();
  EXPECT_NE(out.find("msg"), std::string::npos);
  EXPECT_NE(out.find("256 MiB"), std::string::npos);
  // Header separator line is present.
  EXPECT_NE(out.find("---"), std::string::npos);
  // Columns align: "speedup" starts at the same offset in each line.
  const auto header_pos = out.find("speedup");
  const auto row_pos = out.find("1.00");
  EXPECT_EQ(header_pos % (out.find('\n') + 1), row_pos % (out.find('\n') + 1));
}

TEST(TextTable, RendersCsv) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n3,4\n");
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable t;
  t.set_header({"x"});
  t.add_row({"1", "extra"});
  const std::string out = t.render();
  EXPECT_NE(out.find("extra"), std::string::npos);
}

TEST(TextTable, EmptyTableRendersNothing) {
  const TextTable t;
  EXPECT_TRUE(t.render().empty());
  EXPECT_TRUE(t.render_csv().empty());
}

TEST(FmtDouble, RespectsDecimals) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.14159, 0), "3");
  EXPECT_EQ(fmt_double(-1.5, 1), "-1.5");
}

TEST(FmtSpeedup, AdaptivePrecision) {
  EXPECT_EQ(fmt_speedup(1.0), "1.00");
  EXPECT_EQ(fmt_speedup(9.994), "9.99");
  EXPECT_EQ(fmt_speedup(42.34), "42.3");
  EXPECT_EQ(fmt_speedup(480.2), "480");
}

}  // namespace
}  // namespace psd
