#include "psd/core/multi_port.hpp"

#include <gtest/gtest.h>

#include "psd/collective/algorithms.hpp"
#include "psd/core/optimizers.hpp"
#include "psd/topo/builders.hpp"

namespace psd::core {
namespace {

using topo::Matching;

CostParams make_params(TimeNs alpha_r) {
  CostParams p;
  p.alpha = nanoseconds(100);
  p.delta = nanoseconds(100);
  p.alpha_r = alpha_r;
  p.b = gbps(800);
  return p;
}

TEST(MultiPort, DegenerateSinglePortMatchesProblemInstance) {
  const int n = 16;
  const auto ring = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  const auto sched = collective::alltoall_transpose(n, mib(1));
  const auto params = make_params(microseconds(5));

  const MultiPortInstance mp(as_union_steps(sched), oracle, params, 1);
  const ProblemInstance sp(sched, oracle, params);
  for (int i = 0; i < mp.num_steps(); ++i) {
    EXPECT_DOUBLE_EQ(mp.theta_base(i), sp.step(i).theta_base);
    for (auto c : {TopoChoice::kBase, TopoChoice::kMatched}) {
      EXPECT_DOUBLE_EQ(mp.propagation_cost(i, c).ns(),
                       sp.propagation_cost(i, c).ns());
      EXPECT_DOUBLE_EQ(mp.serialization_cost(i, c).ns(),
                       sp.serialization_cost(i, c).ns());
    }
  }
  EXPECT_NEAR(optimal_multi_port_plan(mp).total_time().ns(),
              optimal_plan(sp).total_time().ns(), 1e-6);
}

TEST(MultiPort, UnionThetaOnDirectedRing) {
  // Union of rotation 1 and rotation 2 on a directed ring: link load 1 + 2,
  // so θ = 1/3 — the exact closed form generalizes to commodity unions.
  const int n = 8;
  const auto ring = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  std::vector<UnionStep> steps{{
      {Matching::rotation(n, 1), Matching::rotation(n, 2)}, mib(1)}};
  const MultiPortInstance inst(std::move(steps), oracle, make_params(microseconds(1)), 2);
  EXPECT_NEAR(inst.theta_base(0), 1.0 / 3.0, 1e-12);
}

TEST(MultiPort, DualPortBaseDoublesCapacity) {
  // On a union of two co-prime rings (degree-2 GPUs), a single rotation
  // demand can split over both rings: θ exceeds the single-ring value.
  const int n = 8;
  const auto base1 = topo::directed_ring(n, gbps(800));
  const auto base2 = topo::coprime_ring_union(n, gbps(800), {1, 3});
  const flow::ThetaOracle o1(base1, gbps(800));
  const flow::ThetaOracle o2(base2, gbps(800));
  std::vector<UnionStep> steps{{{Matching::rotation(n, 2)}, mib(1)}};
  const MultiPortInstance i1(steps, o1, make_params(microseconds(1)), 2);
  const MultiPortInstance i2(steps, o2, make_params(microseconds(1)), 2);
  EXPECT_NEAR(i1.theta_base(0), 0.5, 1e-9);  // 2 flows per stride-1 link
  // The stride-3 ring only offers long detours for a +2 rotation, but the
  // LP still exploits them: exact optimum is 2/3.
  EXPECT_NEAR(i2.theta_base(0), 2.0 / 3.0, 1e-7);
}

TEST(MultiPort, RejectsMoreMatchingsThanPorts) {
  const int n = 8;
  const auto ring = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  std::vector<UnionStep> steps{{
      {Matching::rotation(n, 1), Matching::rotation(n, 2)}, mib(1)}};
  EXPECT_THROW(MultiPortInstance(steps, oracle, make_params(microseconds(1)), 1),
               psd::InvalidArgument);
}

TEST(MultiPort, MirroredAllToAllShape) {
  const int n = 8;
  const auto steps = mirrored_alltoall_steps(n, mib(1));
  ASSERT_EQ(steps.size(), 4u);  // ceil((n-1)/2)
  for (std::size_t i = 0; i + 1 < steps.size(); ++i) {
    EXPECT_EQ(steps[i].matchings.size(), 2u);
  }
  EXPECT_EQ(steps.back().matchings.size(), 1u);  // the n/2 self-mirror
  // Total demand equals the transpose's: every (src, dst) pair exactly once.
  int pairs = 0;
  for (const auto& s : steps) {
    for (const auto& m : s.matchings) pairs += m.active_pairs();
  }
  EXPECT_EQ(pairs, n * (n - 1));

  const auto odd = mirrored_alltoall_steps(7, mib(1));
  EXPECT_EQ(odd.size(), 3u);
  for (const auto& s : odd) EXPECT_EQ(s.matchings.size(), 2u);
}

TEST(MultiPort, MirroredAllToAllHalvesStepsOnDualPortDomain) {
  // Dual-port domain with a bidirectional base: the mirrored construction
  // halves the step count, and the matched fabric runs both directions at
  // full rate.
  const int n = 16;
  const auto base = topo::coprime_ring_union(n, gbps(800), {1, 15});  // cw + ccw
  const flow::ThetaOracle oracle(base, gbps(800));
  const auto params = make_params(microseconds(10));

  const MultiPortInstance mirrored(mirrored_alltoall_steps(n, mib(4)), oracle,
                                   params, 2);
  EXPECT_EQ(mirrored.num_steps(), 8);

  const auto opt = optimal_multi_port_plan(mirrored);
  const auto stat = static_multi_port_plan(mirrored);
  const auto bvn = bvn_multi_port_plan(mirrored);
  EXPECT_LE(opt.total_time().ns(), stat.total_time().ns() + 1e-6);
  EXPECT_LE(opt.total_time().ns(), bvn.total_time().ns() + 1e-6);

  // Versus the single-port transpose on a single ring with the same total
  // per-GPU bandwidth baseline: the dual-port mirrored version needs only
  // half the reconfigurations under an all-matched plan.
  EXPECT_EQ(bvn.num_reconfigurations, 8);
}

TEST(MultiPort, DpMatchesExhaustiveEnumeration) {
  const int n = 8;
  const auto base = topo::coprime_ring_union(n, gbps(800), {1, 3});
  const flow::ThetaOracle oracle(base, gbps(800));
  const auto steps = mirrored_alltoall_steps(n, mib(2));
  const MultiPortInstance inst(steps, oracle, make_params(microseconds(15)), 2);

  const auto dp = optimal_multi_port_plan(inst);
  double best = std::numeric_limits<double>::infinity();
  const int s = inst.num_steps();
  for (std::uint32_t bits = 0; bits < (1U << s); ++bits) {
    std::vector<TopoChoice> choice(static_cast<std::size_t>(s));
    for (int i = 0; i < s; ++i) {
      choice[static_cast<std::size_t>(i)] =
          ((bits >> i) & 1U) ? TopoChoice::kMatched : TopoChoice::kBase;
    }
    best = std::min(best,
                    evaluate_multi_port_plan(inst, std::move(choice)).total_time().ns());
  }
  EXPECT_NEAR(dp.total_time().ns(), best, 1e-6);
}

TEST(MultiPort, ValidatesInput) {
  const int n = 8;
  const auto ring = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  const auto params = make_params(microseconds(1));
  EXPECT_THROW(MultiPortInstance({}, oracle, params, 2), psd::InvalidArgument);
  EXPECT_THROW(MultiPortInstance({UnionStep{{}, mib(1)}}, oracle, params, 2),
               psd::InvalidArgument);
  EXPECT_THROW(MultiPortInstance({UnionStep{{Matching(n)}, mib(1)}}, oracle,
                                 params, 2),
               psd::InvalidArgument);  // empty matching
  EXPECT_THROW(MultiPortInstance({UnionStep{{Matching::rotation(n, 1)}, Bytes(0.0)}},
                                 oracle, params, 2),
               psd::InvalidArgument);
  EXPECT_THROW(
      MultiPortInstance({UnionStep{{Matching::rotation(n, 1)}, mib(1)}}, oracle,
                        params, 0),
      psd::InvalidArgument);
}

}  // namespace
}  // namespace psd::core
