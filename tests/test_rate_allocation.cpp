#include "psd/flow/rate_allocation.hpp"

#include <gtest/gtest.h>

#include "psd/topo/builders.hpp"

namespace psd::flow {
namespace {

using topo::Matching;

TEST(ConcurrentFlowAllocation, UniformRatesEqualTheta) {
  const auto g = topo::directed_ring(8, gbps(800));
  const auto commodities =
      commodities_from_matching(Matching::rotation(8, 4));
  const auto alloc = concurrent_flow_allocation(g, commodities, gbps(800));
  ASSERT_EQ(alloc.rate.size(), commodities.size());
  for (double r : alloc.rate) EXPECT_NEAR(r, 0.25, 1e-9);
}

TEST(ConcurrentFlowAllocation, EmptyCommodities) {
  const auto g = topo::directed_ring(4, gbps(800));
  const auto alloc = concurrent_flow_allocation(g, {}, gbps(800));
  EXPECT_TRUE(alloc.rate.empty());
}

TEST(ConcurrentFlowAllocation, GeneralGraphUsesFptas) {
  const auto g = topo::bidirectional_ring(6, gbps(800));
  const auto commodities =
      commodities_from_matching(Matching::rotation(6, 1));
  const auto alloc =
      concurrent_flow_allocation(g, commodities, gbps(800), 0.02);
  // Exact θ > 1 because flows can split across both directions.
  for (double r : alloc.rate) EXPECT_GT(r, 1.0);
}

TEST(MaxMinFair, SingleSharedBottleneck) {
  // Three flows all crossing link 2 -> 3 of a directed line.
  topo::Graph g(4);
  g.add_edge(0, 1, gbps(800));
  g.add_edge(1, 2, gbps(800));
  g.add_edge(2, 3, gbps(800));
  const std::vector<Commodity> flows{{0, 3, 1.0}, {1, 3, 1.0}, {2, 3, 1.0}};
  const auto alloc = max_min_fair_allocation(g, flows, gbps(800));
  for (double r : alloc.rate) EXPECT_NEAR(r, 1.0 / 3.0, 1e-9);
  EXPECT_EQ(alloc.path[0].size(), 3u);
  EXPECT_EQ(alloc.path[2].size(), 1u);
}

TEST(MaxMinFair, IndependentFlowsGetFullRate) {
  const auto g = topo::directed_ring(6, gbps(800));
  const std::vector<Commodity> flows{{0, 1, 1.0}, {3, 4, 1.0}};
  const auto alloc = max_min_fair_allocation(g, flows, gbps(800));
  EXPECT_NEAR(alloc.rate[0], 1.0, 1e-9);
  EXPECT_NEAR(alloc.rate[1], 1.0, 1e-9);
}

TEST(MaxMinFair, UnevenBottlenecksFreezeProgressively) {
  // A: 0->2 via the shared first link; B: 1->2 alone on a fat link.
  topo::Graph g(3);
  g.add_edge(0, 1, gbps(400));   // thin
  g.add_edge(1, 2, gbps(800));   // fat
  const std::vector<Commodity> flows{{0, 2, 1.0}, {1, 2, 1.0}};
  const auto alloc = max_min_fair_allocation(g, flows, gbps(800));
  // A is capped by the thin link at 0.5; B then fills the fat link to 0.5.
  EXPECT_NEAR(alloc.rate[0], 0.5, 1e-9);
  EXPECT_NEAR(alloc.rate[1], 0.5, 1e-9);
}

TEST(MaxMinFair, ParkingLotFairness) {
  // Classic parking lot: long flow shares each hop with a short flow.
  topo::Graph g(4);
  g.add_edge(0, 1, gbps(800));
  g.add_edge(1, 2, gbps(800));
  g.add_edge(2, 3, gbps(800));
  const std::vector<Commodity> flows{
      {0, 3, 1.0},  // long
      {0, 1, 1.0},
      {1, 2, 1.0},
      {2, 3, 1.0},
  };
  const auto alloc = max_min_fair_allocation(g, flows, gbps(800));
  // Every link is shared by the long flow and one short flow: all get 1/2.
  for (double r : alloc.rate) EXPECT_NEAR(r, 0.5, 1e-9);
}

TEST(MaxMinFair, RatesAreCapacityFeasible) {
  const auto g = topo::bidirectional_ring(8, gbps(800));
  const auto flows = commodities_from_matching(Matching::rotation(8, 3));
  const auto alloc = max_min_fair_allocation(g, flows, gbps(800));
  const auto caps = normalized_capacities(g, gbps(800));
  std::vector<double> load(caps.size(), 0.0);
  for (std::size_t k = 0; k < flows.size(); ++k) {
    for (topo::EdgeId e : alloc.path[k]) {
      load[static_cast<std::size_t>(e)] += alloc.rate[k];
    }
  }
  for (std::size_t e = 0; e < caps.size(); ++e) {
    EXPECT_LE(load[e], caps[e] + 1e-9);
  }
}

TEST(MaxMinFair, DisconnectedThrows) {
  topo::Graph g(3);
  g.add_edge(0, 1, gbps(800));
  EXPECT_THROW((void)max_min_fair_allocation(g, {{0, 2, 1.0}}, gbps(800)),
               psd::InvalidArgument);
}

}  // namespace
}  // namespace psd::flow
