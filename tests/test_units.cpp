#include "psd/util/units.hpp"

#include <gtest/gtest.h>

namespace psd {
namespace {

TEST(Units, TimeConstructorsAndAccessors) {
  EXPECT_DOUBLE_EQ(nanoseconds(100).ns(), 100.0);
  EXPECT_DOUBLE_EQ(microseconds(10).ns(), 10'000.0);
  EXPECT_DOUBLE_EQ(milliseconds(1).ns(), 1e6);
  EXPECT_DOUBLE_EQ(seconds(2).ns(), 2e9);
  EXPECT_DOUBLE_EQ(microseconds(10).us(), 10.0);
  EXPECT_DOUBLE_EQ(milliseconds(3).ms(), 3.0);
  EXPECT_DOUBLE_EQ(seconds(1.5).seconds(), 1.5);
}

TEST(Units, TimeArithmetic) {
  const TimeNs a = nanoseconds(100);
  const TimeNs b = nanoseconds(50);
  EXPECT_DOUBLE_EQ((a + b).ns(), 150.0);
  EXPECT_DOUBLE_EQ((a - b).ns(), 50.0);
  EXPECT_DOUBLE_EQ((a * 3.0).ns(), 300.0);
  EXPECT_DOUBLE_EQ((2.0 * a).ns(), 200.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  EXPECT_DOUBLE_EQ((a / 4.0).ns(), 25.0);
  TimeNs c = a;
  c += b;
  EXPECT_DOUBLE_EQ(c.ns(), 150.0);
  c -= b;
  EXPECT_DOUBLE_EQ(c.ns(), 100.0);
  c *= 2.0;
  EXPECT_DOUBLE_EQ(c.ns(), 200.0);
}

TEST(Units, TimeComparisons) {
  EXPECT_LT(nanoseconds(1), nanoseconds(2));
  EXPECT_EQ(microseconds(1), nanoseconds(1000));
  EXPECT_GE(milliseconds(1), microseconds(1000));
}

TEST(Units, BytesConstructorsAndAccessors) {
  EXPECT_DOUBLE_EQ(kib(1).count(), 1024.0);
  EXPECT_DOUBLE_EQ(mib(1).count(), 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(gib(1).count(), 1024.0 * 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(mib(4).mib(), 4.0);
  EXPECT_DOUBLE_EQ(gib(2).gib(), 2.0);
  EXPECT_DOUBLE_EQ(kib(8).kib(), 8.0);
}

TEST(Units, BandwidthGbpsRoundTrip) {
  const Bandwidth b = gbps(800);
  // 800 Gbps == 100 bytes per nanosecond.
  EXPECT_DOUBLE_EQ(b.bytes_per_ns(), 100.0);
  EXPECT_DOUBLE_EQ(b.gbps(), 800.0);
}

TEST(Units, CrossUnitArithmetic) {
  const Bytes m = mib(1);
  const Bandwidth b = gbps(800);
  const TimeNs t = m / b;
  EXPECT_NEAR(t.ns(), 1024.0 * 1024.0 / 100.0, 1e-9);
  const Bytes moved = b * t;
  EXPECT_NEAR(moved.count(), m.count(), 1e-6);
  EXPECT_NEAR((t * b).count(), m.count(), 1e-6);
}

TEST(Units, BandwidthArithmetic) {
  const Bandwidth b = gbps(400);
  EXPECT_DOUBLE_EQ((b * 2.0).gbps(), 800.0);
  EXPECT_DOUBLE_EQ((b / 2.0).gbps(), 200.0);
  EXPECT_DOUBLE_EQ((b + b).gbps(), 800.0);
  EXPECT_DOUBLE_EQ((b - b / 2.0).gbps(), 200.0);
  EXPECT_DOUBLE_EQ(b / gbps(100), 4.0);
}

TEST(Units, TimeToString) {
  EXPECT_EQ(to_string(nanoseconds(100)), "100 ns");
  EXPECT_EQ(to_string(microseconds(10)), "10 us");
  EXPECT_EQ(to_string(milliseconds(2.5)), "2.5 ms");
  EXPECT_EQ(to_string(seconds(3)), "3 s");
  EXPECT_EQ(to_string(nanoseconds(316.23)), "316.23 ns");
}

TEST(Units, BytesToString) {
  EXPECT_EQ(to_string(bytes(512)), "512 B");
  EXPECT_EQ(to_string(kib(64)), "64 KiB");
  EXPECT_EQ(to_string(mib(1)), "1 MiB");
  EXPECT_EQ(to_string(gib(1)), "1 GiB");
}

TEST(Units, BandwidthToString) {
  EXPECT_EQ(to_string(gbps(800)), "800 Gbps");
}

TEST(Units, DefaultConstructedAreZero) {
  EXPECT_DOUBLE_EQ(TimeNs{}.ns(), 0.0);
  EXPECT_DOUBLE_EQ(Bytes{}.count(), 0.0);
  EXPECT_DOUBLE_EQ(Bandwidth{}.bytes_per_ns(), 0.0);
}

}  // namespace
}  // namespace psd
