#include "psd/flow/simplex.hpp"
#include <algorithm>
#include <cmath>

#include "psd/util/rng.hpp"

#include <gtest/gtest.h>

#include "psd/util/error.hpp"

namespace psd::flow {
namespace {

TEST(Simplex, BasicMaximization) {
  // max 3x + 2y  s.t.  x + y <= 4,  x <= 2  ->  x = 2, y = 2, obj = 10.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {3.0, 2.0};
  p.rows.push_back({{1.0, 1.0}, Rel::LessEq, 4.0});
  p.rows.push_back({{1.0, 0.0}, Rel::LessEq, 2.0});
  const auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective_value, 10.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  // max x + 2y  s.t.  x + y = 3,  y <= 2  ->  x = 1, y = 2, obj = 5.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 2.0};
  p.rows.push_back({{1.0, 1.0}, Rel::Eq, 3.0});
  p.rows.push_back({{0.0, 1.0}, Rel::LessEq, 2.0});
  const auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective_value, 5.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-9);
}

TEST(Simplex, GreaterEqConstraint) {
  // max -x  s.t.  x >= 2  ->  x = 2, obj = -2.
  LpProblem p;
  p.num_vars = 1;
  p.objective = {-1.0};
  p.rows.push_back({{1.0}, Rel::GreaterEq, 2.0});
  const auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective_value, -2.0, 1e-9);
}

TEST(Simplex, NegativeRhsNormalization) {
  // -x >= -2  <=>  x <= 2;  max x -> 2.
  LpProblem p;
  p.num_vars = 1;
  p.objective = {1.0};
  p.rows.push_back({{-1.0}, Rel::GreaterEq, -2.0});
  const auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective_value, 2.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem p;
  p.num_vars = 1;
  p.objective = {1.0};
  p.rows.push_back({{1.0}, Rel::LessEq, 1.0});
  p.rows.push_back({{1.0}, Rel::GreaterEq, 2.0});
  EXPECT_EQ(solve_lp(p).status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 0.0};
  p.rows.push_back({{0.0, 1.0}, Rel::LessEq, 1.0});  // x unconstrained above
  EXPECT_EQ(solve_lp(p).status, LpStatus::Unbounded);
}

TEST(Simplex, DegenerateRedundantConstraints) {
  // max x + y  s.t.  x <= 1, y <= 1, x + y <= 2 (redundant), x + y = 2.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 1.0};
  p.rows.push_back({{1.0, 0.0}, Rel::LessEq, 1.0});
  p.rows.push_back({{0.0, 1.0}, Rel::LessEq, 1.0});
  p.rows.push_back({{1.0, 1.0}, Rel::LessEq, 2.0});
  p.rows.push_back({{1.0, 1.0}, Rel::Eq, 2.0});
  const auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective_value, 2.0, 1e-9);
}

TEST(Simplex, RedundantEqualityRowsHandled) {
  // Duplicate equality rows (linearly dependent but consistent).
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 0.0};
  p.rows.push_back({{1.0, 1.0}, Rel::Eq, 2.0});
  p.rows.push_back({{1.0, 1.0}, Rel::Eq, 2.0});
  const auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective_value, 2.0, 1e-9);
}

TEST(Simplex, ZeroObjectiveFeasibilityCheck) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {0.0, 0.0};
  p.rows.push_back({{1.0, 1.0}, Rel::Eq, 1.0});
  const auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective_value, 0.0, 1e-12);
  EXPECT_NEAR(sol.x[0] + sol.x[1], 1.0, 1e-9);
}

TEST(Simplex, RejectsMalformedRows) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1.0, 1.0};
  p.rows.push_back({{1.0}, Rel::LessEq, 1.0});  // wrong arity
  EXPECT_THROW((void)solve_lp(p), psd::InvalidArgument);

  LpProblem q;
  q.num_vars = 2;
  q.objective = {1.0};  // wrong objective size
  EXPECT_THROW((void)solve_lp(q), psd::InvalidArgument);
}

class SimplexRandomP : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomP, RandomBounded2VarLpMatchesGridSearch) {
  // Random 2-variable LPs with box constraints plus random cuts: the
  // simplex optimum must dominate every feasible grid point and be achieved
  // near some vertex of the grid hull.
  psd::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 11);
  LpProblem p;
  p.num_vars = 2;
  p.objective = {rng.uniform(0.1, 2.0), rng.uniform(0.1, 2.0)};
  p.rows.push_back({{1.0, 0.0}, Rel::LessEq, rng.uniform(1.0, 5.0)});
  p.rows.push_back({{0.0, 1.0}, Rel::LessEq, rng.uniform(1.0, 5.0)});
  const int cuts = rng.uniform_int(1, 3);
  for (int c = 0; c < cuts; ++c) {
    p.rows.push_back({{rng.uniform(0.1, 1.5), rng.uniform(0.1, 1.5)},
                      Rel::LessEq, rng.uniform(1.0, 6.0)});
  }
  const auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, LpStatus::Optimal);

  double grid_best = 0.0;
  const int grid = 200;
  for (int i = 0; i <= grid; ++i) {
    for (int j = 0; j <= grid; ++j) {
      const double x = 5.0 * i / grid;
      const double y = 5.0 * j / grid;
      bool feasible = true;
      for (const auto& row : p.rows) {
        if (row.coeffs[0] * x + row.coeffs[1] * y > row.rhs + 1e-12) {
          feasible = false;
          break;
        }
      }
      if (feasible) {
        grid_best = std::max(grid_best, p.objective[0] * x + p.objective[1] * y);
      }
    }
  }
  EXPECT_GE(sol.objective_value, grid_best - 1e-9);
  // The grid resolution bounds how far below the optimum it can sit.
  EXPECT_LE(sol.objective_value, grid_best + 0.2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomP, ::testing::Range(0, 10));

TEST(Simplex, BoundedPolytopeCorner) {
  // max 2x + 3y  s.t.  x + 2y <= 14, 3x - y >= 0, x - y <= 2.
  // Optimum at x = 6, y = 4, obj = 24.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {2.0, 3.0};
  p.rows.push_back({{1.0, 2.0}, Rel::LessEq, 14.0});
  p.rows.push_back({{3.0, -1.0}, Rel::GreaterEq, 0.0});
  p.rows.push_back({{1.0, -1.0}, Rel::LessEq, 2.0});
  const auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective_value, 24.0, 1e-8);
  EXPECT_NEAR(sol.x[0], 6.0, 1e-8);
  EXPECT_NEAR(sol.x[1], 4.0, 1e-8);
}

}  // namespace
}  // namespace psd::flow
