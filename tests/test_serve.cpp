// Serve subsystem: wire-protocol parsing, and PlanService end-to-end —
// memo hits, coalescing, the deadline/degradation ladder (including the
// 2x-budget answer guarantee), admission shed, bit-exact resume after a
// cancelled solve, delta-driven θ-cache carry, crash-only worker
// recovery, and shutdown semantics. Timing-sensitive tests use a ~1.5 s
// mesh/alltoall solve as the blocker and assert only generous bounds.
#include "psd/serve/service.hpp"

#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "psd/util/fault_injection.hpp"
#include "psd/util/json.hpp"

namespace psd::serve {
namespace {

using namespace std::chrono_literals;

/// Thread-safe response sink: parses each emitted line and hands tests a
/// blocking lookup by request id.
class Capture {
 public:
  void operator()(const std::string& line) {
    auto v = parse_json(line);
    const auto* id = v.find("id");
    const std::lock_guard<std::mutex> lk(mu_);
    by_id_[id != nullptr ? id->as_string() : ""] = std::move(v);
    cv_.notify_all();
  }

  /// Blocks until the response for `id` arrives (fails the test on timeout).
  JsonValue wait(const std::string& id,
                 std::chrono::milliseconds timeout = 30'000ms) {
    std::unique_lock<std::mutex> lk(mu_);
    if (!cv_.wait_for(lk, timeout, [&] { return by_id_.count(id) != 0; })) {
      ADD_FAILURE() << "no response for " << id;
      return JsonValue{};
    }
    return by_id_[id];
  }

  [[nodiscard]] bool seen(const std::string& id) {
    const std::lock_guard<std::mutex> lk(mu_);
    return by_id_.count(id) != 0;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, JsonValue> by_id_;
};

std::string code_of(const JsonValue& v) {
  const auto* c = v.find("code");
  return c != nullptr ? c->as_string() : "<missing>";
}

/// Cheap request: sub-millisecond solve.
std::string cheap_plan(const std::string& id, const std::string& extra = "") {
  return R"({"op":"plan","id":")" + id +
         R"(","topology":"ring","nodes":8,"collective":"allreduce:ring",)" +
         R"("message_bytes":1048576)" + extra + "}";
}

/// Heavy request: ~1.5 s cold solve (mesh n12 all-to-all), the blocker
/// for deadline/coalescing/shed tests. `salt` varies the solve key.
std::string heavy_plan(const std::string& id, int salt = 0,
                       const std::string& extra = "") {
  return R"({"op":"plan","id":")" + id +
         R"(","topology":"mesh","nodes":12,"collective":"alltoall",)" +
         R"("message_bytes":)" + std::to_string(4194304 + salt) + extra + "}";
}

std::string ring_delta(const std::string& id, int src, int dst) {
  return R"({"op":"delta","id":")" + id +
         R"(","topology":"ring","nodes":8,"ops":[{"kind":"scale_capacity",)" +
         R"("src":)" + std::to_string(src) + R"(,"dst":)" +
         std::to_string(dst) + R"(,"factor":0.5}]})";
}

// ---- Protocol parsing ----------------------------------------------------

TEST(ServeProtocol, ParsesPlanRequest) {
  const auto req = parse_request(
      R"({"op":"plan","id":"x","topology":"hypercube","nodes":16,)"
      R"("collective":"allreduce:swing","message_bytes":2048,)"
      R"("deadline_ms":12.5,"allow_degraded":false})");
  EXPECT_EQ(req.op, RequestOp::kPlan);
  EXPECT_EQ(req.id, "x");
  EXPECT_EQ(req.plan.nodes, 16);
  EXPECT_DOUBLE_EQ(req.plan.message.count(), 2048.0);
  EXPECT_DOUBLE_EQ(req.plan.deadline_ms, 12.5);
  EXPECT_FALSE(req.plan.allow_degraded);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  EXPECT_THROW((void)parse_request("not json"), JsonParseError);
  EXPECT_THROW((void)parse_request("[1,2]"), Error);       // not an object
  EXPECT_THROW((void)parse_request(R"({"id":"x"})"), Error);  // no op
  EXPECT_THROW((void)parse_request(R"({"op":"fly","id":"x"})"), Error);
  EXPECT_THROW(  // invalid scenario combination (hypercube needs 2^k)
      (void)parse_request(
          R"({"op":"plan","id":"x","topology":"hypercube","nodes":6,)"
          R"("collective":"allreduce"})"),
      Error);
  EXPECT_THROW(  // node count out of range
      (void)parse_request(
          R"({"op":"plan","id":"x","topology":"ring","nodes":1,)"
          R"("collective":"allreduce"})"),
      Error);
}

TEST(ServeProtocol, SalvagesIdFromInvalidRequest) {
  std::string id;
  EXPECT_THROW((void)parse_request(
                   R"({"op":"plan","id":"keepme","topology":"nope",)"
                   R"("nodes":8,"collective":"allreduce"})",
                   &id),
               Error);
  EXPECT_EQ(id, "keepme");
}

TEST(ServeProtocol, ErrorResponseShape) {
  const auto v = parse_json(
      error_response("r", ErrorCode::kShed, "queue full", 12.0));
  EXPECT_EQ(v.find("id")->as_string(), "r");
  EXPECT_EQ(v.find("code")->as_string(), "SHED");
  EXPECT_EQ(v.find("error")->as_string(), "queue full");
  EXPECT_DOUBLE_EQ(v.find("retry_after_ms")->as_number(), 12.0);
  // Without a retry hint the field is absent, not -1.
  const auto w = parse_json(
      error_response("r", ErrorCode::kDeadlineExceeded, "late"));
  EXPECT_EQ(w.find("retry_after_ms"), nullptr);
  EXPECT_EQ(w.find("code")->as_string(), "DEADLINE_EXCEEDED");
}

// ---- Service basics ------------------------------------------------------

TEST(PlanService, ColdSolveThenMemoHit) {
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  PlanService svc(opts, std::ref(cap));

  svc.submit_line(cheap_plan("a"));
  const auto a = cap.wait("a");
  ASSERT_EQ(code_of(a), "OK");
  EXPECT_FALSE(a.find("degraded")->as_bool());
  EXPECT_FALSE(a.find("cached")->as_bool());
  EXPECT_GT(a.find("optimal_ns")->as_number(), 0.0);
  EXPECT_GT(a.find("steps")->as_number(), 0.0);

  svc.submit_line(cheap_plan("b"));
  const auto b = cap.wait("b");
  ASSERT_EQ(code_of(b), "OK");
  EXPECT_TRUE(b.find("cached")->as_bool());
  EXPECT_EQ(b.find("optimal_ns")->as_number(),
            a.find("optimal_ns")->as_number());  // bit-exact

  const auto st = svc.stats();
  EXPECT_EQ(st.planned, 1u);
  EXPECT_EQ(st.cache_hits, 1u);
  svc.shutdown();
}

// Every OK plan response carries the chunk-pipelined price of the optimal
// plan; chosen_algo appears exactly when the request asked for algo=auto.
TEST(PlanService, PipelinedPricingAndAutoSelectionOnTheWire) {
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  PlanService svc(opts, std::ref(cap));

  svc.submit_line(cheap_plan("fixed"));
  const auto fixed = cap.wait("fixed");
  ASSERT_EQ(code_of(fixed), "OK");
  ASSERT_NE(fixed.find("pipelined_ns"), nullptr);
  EXPECT_GT(fixed.find("pipelined_ns")->as_number(), 0.0);
  EXPECT_LE(fixed.find("pipelined_ns")->as_number(),
            fixed.find("optimal_ns")->as_number() * (1 + 1e-9));
  EXPECT_GE(fixed.find("pipeline_chunks")->as_number(), 1.0);
  // Explicit algorithm: no selection happened, no chosen_algo field.
  EXPECT_EQ(fixed.find("chosen_algo"), nullptr);

  // algo=auto large: the selector sweeps candidates and reports the winner.
  svc.submit_line(
      R"({"op":"plan","id":"auto-big","topology":"ring","nodes":8,)"
      R"("collective":"allreduce:auto","message_bytes":67108864,)"
      R"("alpha_ns":100,"delta_ns":100,"alpha_r_ns":10000,)"
      R"("bandwidth_gbps":800})");
  const auto big = cap.wait("auto-big");
  ASSERT_EQ(code_of(big), "OK");
  ASSERT_NE(big.find("chosen_algo"), nullptr);
  EXPECT_EQ(big.find("chosen_algo")->as_string(), "ring");

  // algo=auto small: the threshold fallback picks the latency-lean
  // algorithm without a candidate sweep.
  svc.submit_line(
      R"({"op":"plan","id":"auto-small","topology":"ring","nodes":8,)"
      R"("collective":"allreduce:auto","message_bytes":4096,)"
      R"("alpha_ns":100,"delta_ns":100,"alpha_r_ns":10000,)"
      R"("bandwidth_gbps":800})");
  const auto small = cap.wait("auto-small");
  ASSERT_EQ(code_of(small), "OK");
  ASSERT_NE(small.find("chosen_algo"), nullptr);
  EXPECT_EQ(small.find("chosen_algo")->as_string(), "rd");
  svc.shutdown();
}

TEST(PlanService, CoalescesIdenticalInFlightRequests) {
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  PlanService svc(opts, std::ref(cap));

  // Occupy the only worker, then submit two identical heavy requests:
  // they must ride the same job (one solve, two answers).
  svc.submit_line(heavy_plan("blocker", 1));
  svc.submit_line(heavy_plan("c1", 2));
  svc.submit_line(heavy_plan("c2", 2));
  const auto c1 = cap.wait("c1");
  const auto c2 = cap.wait("c2");
  ASSERT_EQ(code_of(c1), "OK");
  ASSERT_EQ(code_of(c2), "OK");
  EXPECT_EQ(c1.find("optimal_ns")->as_number(),
            c2.find("optimal_ns")->as_number());
  EXPECT_FALSE(c1.find("coalesced")->as_bool());
  EXPECT_TRUE(c2.find("coalesced")->as_bool());
  EXPECT_GE(svc.stats().coalesced, 1u);
  // Two heavy keys solved in total, not three.
  EXPECT_EQ(svc.stats().planned, 2u);
  svc.shutdown();
}

// The acceptance guarantee: a deadline-carrying request is answered within
// 2x its budget even while the only worker grinds a cold multi-second
// solve. Budget 250 ms >> the 5 ms watchdog tick, so the sweep that
// expires it lands well inside the 2x bound.
TEST(PlanService, DeadlineAnsweredWithinTwiceBudgetUnderLoad) {
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  // Probability-0 site as a dispatch probe: hits() records every worker
  // dispatch without ever firing, so the test can wait for the blocker to
  // actually be in flight instead of sleeping a fixed (load-sensitive)
  // amount.
  util::FaultInjector fault(1);
  fault.arm("worker.slow", {.probability = 0.0});
  opts.fault = &fault;
  PlanService svc(opts, std::ref(cap));

  svc.submit_line(heavy_plan("blocker"));
  // Let the worker take the blocker first: once it is in flight, the
  // urgent lane cannot help the deadline request — the ladder must.
  for (int i = 0; i < 2000 && fault.hits("worker.slow") == 0; ++i)
    std::this_thread::sleep_for(1ms);
  ASSERT_GE(fault.hits("worker.slow"), 1u);
  const double budget_ms = 250.0;
  const auto start = std::chrono::steady_clock::now();
  svc.submit_line(cheap_plan("dl", ",\"deadline_ms\":250"));
  const auto r = cap.wait("dl");
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  // Never seen this key and the worker is busy: the ladder has nothing to
  // serve, so the watchdog answers DEADLINE_EXCEEDED at ~budget.
  EXPECT_EQ(code_of(r), "DEADLINE_EXCEEDED");
  EXPECT_LT(elapsed_ms, 2.0 * budget_ms);
  EXPECT_GE(svc.stats().deadline_exceeded, 1u);
  svc.shutdown();
}

// Budgets at or below the fast-path floor are answered synchronously —
// no timing involved at all.
TEST(PlanService, FastPathBudgetAnsweredSynchronously) {
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  PlanService svc(opts, std::ref(cap));

  svc.submit_line(cheap_plan("f1", ",\"deadline_ms\":0.01"));
  ASSERT_TRUE(cap.seen("f1"));  // emitted before submit_line returned
  EXPECT_EQ(code_of(cap.wait("f1")), "DEADLINE_EXCEEDED");

  // Warm the memo, then the same tight budget is a fresh cache hit.
  svc.submit_line(cheap_plan("warm"));
  (void)cap.wait("warm");
  svc.submit_line(cheap_plan("f2", ",\"deadline_ms\":0.01"));
  const auto f2 = cap.wait("f2");
  EXPECT_EQ(code_of(f2), "OK");
  EXPECT_TRUE(f2.find("cached")->as_bool());
  EXPECT_FALSE(f2.find("degraded")->as_bool());
  svc.shutdown();
}

// A cancelled solve must leave no partial state behind: rerunning the
// identical request afterwards yields the bit-exact answer an uncancelled
// service computes.
TEST(PlanService, CancelledSolveResumesBitExact) {
  ServiceOptions opts;
  opts.workers = 1;

  // Reference: the same heavy plan solved with no deadline pressure.
  Capture ref_cap;
  PlanService ref(opts, std::ref(ref_cap));
  ref.submit_line(heavy_plan("ref"));
  const auto ref_answer = ref_cap.wait("ref");
  ASSERT_EQ(code_of(ref_answer), "OK");
  ref.shutdown();

  Capture cap;
  PlanService svc(opts, std::ref(cap));
  // 100 ms budget on a ~1.5 s solve: dispatches (above the fast path),
  // then the armed token cancels it mid-GK.
  svc.submit_line(heavy_plan("cancelled", 0, ",\"deadline_ms\":100"));
  const auto c = cap.wait("cancelled");
  EXPECT_EQ(code_of(c), "DEADLINE_EXCEEDED");

  svc.submit_line(heavy_plan("retry"));
  const auto r = cap.wait("retry");
  ASSERT_EQ(code_of(r), "OK");
  EXPECT_FALSE(r.find("degraded")->as_bool());
  EXPECT_EQ(r.find("optimal_ns")->as_number(),
            ref_answer.find("optimal_ns")->as_number());
  EXPECT_EQ(r.find("steps")->as_number(),
            ref_answer.find("steps")->as_number());
  svc.shutdown();
}

TEST(PlanService, LateRiderOnCancelledSolveIsRequeuedNotExpired) {
  ServiceOptions opts;
  opts.workers = 1;
  Capture cap;
  PlanService svc(opts, std::ref(cap));
  // 100 ms budget on a ~1.5 s solve: the armed token cancels it mid-GK.
  svc.submit_line(heavy_plan("cancelled", 0, ",\"deadline_ms\":100"));
  // Ride the same solve key without a deadline while the doomed solve is
  // in flight. The cancellation must not take the rider with it: the
  // lapsed waiter expires, the job is requeued for the rider and solved
  // to completion with the token disarmed.
  std::this_thread::sleep_for(50ms);
  svc.submit_line(heavy_plan("rider"));
  EXPECT_EQ(code_of(cap.wait("cancelled")), "DEADLINE_EXCEEDED");
  const auto r = cap.wait("rider");
  ASSERT_EQ(code_of(r), "OK");
  EXPECT_FALSE(r.find("degraded")->as_bool());
  svc.shutdown();
}

TEST(PlanService, OverloadBurstShedsWithRetryAfter) {
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_limit = 1;
  PlanService svc(opts, std::ref(cap));

  svc.submit_line(heavy_plan("h0", 0));  // dispatched
  // Give the worker time to dequeue h0 (its solve runs ~1.5 s, so it is
  // still busy when the burst lands); otherwise h1 could race for the
  // queue slot.
  std::this_thread::sleep_for(250ms);
  svc.submit_line(heavy_plan("h1", 1));  // queued (fills the queue)
  svc.submit_line(heavy_plan("h2", 2));  // shed
  svc.submit_line(heavy_plan("h3", 3));  // shed
  const auto h2 = cap.wait("h2");
  const auto h3 = cap.wait("h3");
  EXPECT_EQ(code_of(h2), "SHED");
  EXPECT_EQ(code_of(h3), "SHED");
  ASSERT_NE(h2.find("retry_after_ms"), nullptr);
  EXPECT_GT(h2.find("retry_after_ms")->as_number(), 0.0);
  EXPECT_GE(svc.stats().shed, 2u);

  // Shutdown fails the queued job with SHUTTING_DOWN and lets the
  // in-flight solve finish and answer.
  svc.shutdown();
  EXPECT_EQ(code_of(cap.wait("h1")), "SHUTTING_DOWN");
  EXPECT_EQ(code_of(cap.wait("h0")), "OK");
  svc.submit_line(cheap_plan("late"));
  EXPECT_EQ(code_of(cap.wait("late")), "SHUTTING_DOWN");
}

// ---- Deltas and degradation ----------------------------------------------

TEST(PlanService, DeltaCarriesThetaCacheAndDegradesStaleMemo) {
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  opts.replan_on_delta = false;  // keep the memo stale deterministically
  PlanService svc(opts, std::ref(cap));

  svc.submit_line(cheap_plan("seed"));
  ASSERT_EQ(code_of(cap.wait("seed")), "OK");
  const auto pre = svc.theta_cache().stats();
  ASSERT_GT(pre.entries, 0u);

  svc.submit_line(ring_delta("d", 2, 3));
  const auto d = cap.wait("d");
  ASSERT_EQ(code_of(d), "OK");
  EXPECT_EQ(d.find("epoch")->as_number(), 1.0);  // first delta, one op
  EXPECT_EQ(d.find("touched")->as_number(), 1.0);
  EXPECT_FALSE(d.find("relaxing")->as_bool());
  // Edge-level carry: every examined entry is either carried or
  // invalidated, nothing vanishes unaccounted.
  const double examined = d.find("theta_examined")->as_number();
  EXPECT_GT(examined, 0.0);
  EXPECT_EQ(d.find("theta_carried")->as_number() +
                d.find("theta_invalidated")->as_number(),
            examined);
  EXPECT_EQ(d.find("memo_stale")->as_number(), 1.0);
  EXPECT_EQ(d.find("replans_enqueued")->as_number(), 0.0);

  // The stale memo entry is the degradation ladder's fodder: a tight
  // budget on the same key is answered degraded with its epoch lag.
  svc.submit_line(cheap_plan("deg", ",\"deadline_ms\":0.01"));
  const auto deg = cap.wait("deg");
  ASSERT_EQ(code_of(deg), "OK");
  EXPECT_TRUE(deg.find("degraded")->as_bool());
  EXPECT_EQ(deg.find("epoch_lag")->as_number(), 1.0);
  EXPECT_GE(svc.stats().degraded, 1u);

  // allow_degraded=false refuses the stale answer.
  svc.submit_line(
      cheap_plan("strict", ",\"deadline_ms\":0.01,\"allow_degraded\":false"));
  EXPECT_EQ(code_of(cap.wait("strict")), "DEADLINE_EXCEEDED");

  // A fresh (no-deadline) solve on the delta'd context is not degraded.
  svc.submit_line(cheap_plan("fresh"));
  const auto fresh = cap.wait("fresh");
  ASSERT_EQ(code_of(fresh), "OK");
  EXPECT_FALSE(fresh.find("degraded")->as_bool());
  svc.shutdown();
}

TEST(PlanService, DeltaEnqueuesReplansThatRefreshTheMemo) {
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  PlanService svc(opts, std::ref(cap));

  svc.submit_line(cheap_plan("seed"));
  (void)cap.wait("seed");
  svc.submit_line(ring_delta("d", 4, 5));
  const auto d = cap.wait("d");
  ASSERT_EQ(code_of(d), "OK");
  EXPECT_EQ(d.find("replans_enqueued")->as_number(), 1.0);
  svc.drain();  // let the internal replan finish
  EXPECT_GE(svc.stats().replans, 1u);

  // The memo is fresh again: a tight budget now gets a cache hit, not a
  // degraded answer.
  svc.submit_line(cheap_plan("hit", ",\"deadline_ms\":0.01"));
  const auto hit = cap.wait("hit");
  ASSERT_EQ(code_of(hit), "OK");
  EXPECT_TRUE(hit.find("cached")->as_bool());
  EXPECT_FALSE(hit.find("degraded")->as_bool());
  svc.shutdown();
}

TEST(PlanService, InvalidDeltaIsRejected) {
  Capture cap;
  PlanService svc(ServiceOptions{}, std::ref(cap));
  // Node id out of range for the context.
  svc.submit_line(
      R"({"op":"delta","id":"bad","topology":"ring","nodes":8,)"
      R"("ops":[{"kind":"scale_capacity","src":0,"dst":99,"factor":0.5}]})");
  EXPECT_EQ(code_of(cap.wait("bad")), "INVALID_REQUEST");
  EXPECT_GE(svc.stats().invalid, 1u);
  svc.shutdown();
}

// ---- Fault tolerance -----------------------------------------------------

TEST(PlanService, WatchdogRespawnsCrashedWorker) {
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;  // the crash kills the whole fleet
  PlanService svc(opts, std::ref(cap));

  svc.submit_line(cheap_plan("boom", ",\"inject_worker_crash\":true"));
  EXPECT_EQ(code_of(cap.wait("boom")), "INTERNAL");

  // The watchdog restarts the dead slot; a subsequent request is served.
  svc.submit_line(cheap_plan("after"));
  EXPECT_EQ(code_of(cap.wait("after")), "OK");
  EXPECT_GE(svc.stats().worker_restarts, 1u);
  EXPECT_GE(svc.stats().internal_errors, 1u);
  svc.shutdown();
}

TEST(PlanService, InvalidLineAnsweredWithSalvagedId) {
  Capture cap;
  PlanService svc(ServiceOptions{}, std::ref(cap));
  svc.submit_line(
      R"({"op":"plan","id":"sal","topology":"klein-bottle","nodes":8,)"
      R"("collective":"allreduce"})");
  const auto r = cap.wait("sal");
  EXPECT_EQ(code_of(r), "INVALID_REQUEST");
  ASSERT_NE(r.find("error"), nullptr);
  svc.shutdown();
}

TEST(PlanService, StatsOpReportsPercentilesAndCounters) {
  Capture cap;
  ServiceOptions opts;
  opts.workers = 1;
  PlanService svc(opts, std::ref(cap));
  svc.submit_line(cheap_plan("p1"));
  (void)cap.wait("p1");
  svc.submit_line(cheap_plan("p2"));  // memo hit
  (void)cap.wait("p2");
  svc.submit_line(R"({"op":"stats","id":"s"})");
  const auto s = cap.wait("s");
  ASSERT_EQ(code_of(s), "OK");
  const auto* st = s.find("stats");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->find("planned")->as_number(), 1.0);
  EXPECT_EQ(st->find("cache_hits")->as_number(), 1.0);
  EXPECT_GT(st->find("p50_plan_ms")->as_number(), 0.0);
  EXPECT_GE(st->find("p99_plan_ms")->as_number(),
            st->find("p50_plan_ms")->as_number());
  EXPECT_GE(st->find("theta_cache_hit_rate")->as_number(), 0.0);
  EXPECT_EQ(st->find("queue_depth")->as_number(), 0.0);
  svc.shutdown();
}

}  // namespace
}  // namespace psd::serve
