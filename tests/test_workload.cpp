#include "psd/workload/workload.hpp"

#include <gtest/gtest.h>

#include "psd/collective/executor.hpp"

namespace psd::workload {
namespace {

TEST(Materialize, AllReduceAlgoSelection) {
  const CollectiveRequest req{CollectiveKind::kAllReduce, mib(1), "x"};
  MaterializeOptions opts;
  opts.allreduce = AllReduceAlgo::kRing;
  EXPECT_EQ(materialize(req, 8, opts).num_steps(), 14);
  opts.allreduce = AllReduceAlgo::kRecursiveDoubling;
  EXPECT_EQ(materialize(req, 8, opts).num_steps(), 3);
  opts.allreduce = AllReduceAlgo::kHalvingDoubling;
  EXPECT_EQ(materialize(req, 8, opts).num_steps(), 6);
  opts.allreduce = AllReduceAlgo::kSwing;
  EXPECT_EQ(materialize(req, 8, opts).name(), "swing-allreduce");
}

TEST(Materialize, AllToAllAlgoSelection) {
  const CollectiveRequest req{CollectiveKind::kAllToAll, mib(1), "x"};
  MaterializeOptions opts;
  EXPECT_EQ(materialize(req, 8, opts).num_steps(), 7);
  opts.alltoall = AllToAllAlgo::kBruck;
  EXPECT_EQ(materialize(req, 8, opts).num_steps(), 3);
}

// The topology-blind kAuto fallback: latency-lean at or below the 4 KiB
// threshold, bandwidth-lean above, ring/transpose on non-power-of-two n
// regardless of size (the recursive algorithms cannot materialize there).
TEST(Materialize, ResolveAllReduceAuto) {
  EXPECT_EQ(resolve_allreduce_auto(kib(4), 8), AllReduceAlgo::kRecursiveDoubling);
  EXPECT_EQ(resolve_allreduce_auto(Bytes(4097.0), 8),
            AllReduceAlgo::kHalvingDoubling);
  EXPECT_EQ(resolve_allreduce_auto(mib(64), 8), AllReduceAlgo::kHalvingDoubling);
  EXPECT_EQ(resolve_allreduce_auto(kib(1), 6), AllReduceAlgo::kRing);
  EXPECT_EQ(resolve_allreduce_auto(mib(64), 6), AllReduceAlgo::kRing);
  AutoThresholds t;
  t.small_message = mib(1);
  EXPECT_EQ(resolve_allreduce_auto(kib(512), 8, t),
            AllReduceAlgo::kRecursiveDoubling);
}

TEST(Materialize, ResolveAllToAllAuto) {
  EXPECT_EQ(resolve_alltoall_auto(kib(2), 8), AllToAllAlgo::kBruck);
  EXPECT_EQ(resolve_alltoall_auto(mib(8), 8), AllToAllAlgo::kTranspose);
  // Bruck needs power-of-two n; transpose is the universal fallback.
  EXPECT_EQ(resolve_alltoall_auto(kib(2), 6), AllToAllAlgo::kTranspose);
}

// materialize() resolves kAuto through the same fallback, so the builder it
// picks matches the resolved enum's builder exactly.
TEST(Materialize, AutoMaterializesResolvedAlgorithm) {
  MaterializeOptions opts;
  opts.allreduce = AllReduceAlgo::kAuto;
  const auto small =
      materialize({CollectiveKind::kAllReduce, kib(2), ""}, 8, opts);
  EXPECT_EQ(small.num_steps(), 3);  // recursive doubling: log2(8) rounds
  const auto large =
      materialize({CollectiveKind::kAllReduce, mib(16), ""}, 8, opts);
  EXPECT_EQ(large.num_steps(), 6);  // halving/doubling: 2·log2(8) rounds

  opts.alltoall = AllToAllAlgo::kAuto;
  const auto a2a_small =
      materialize({CollectiveKind::kAllToAll, kib(2), ""}, 8, opts);
  EXPECT_EQ(a2a_small.num_steps(), 3);  // Bruck
  const auto a2a_large =
      materialize({CollectiveKind::kAllToAll, mib(16), ""}, 8, opts);
  EXPECT_EQ(a2a_large.num_steps(), 7);  // transpose
}

TEST(Materialize, AutoAlgoNames) {
  EXPECT_STREQ(to_string(AllReduceAlgo::kAuto), "auto");
  EXPECT_STREQ(to_string(AllToAllAlgo::kAuto), "auto");
}

TEST(Materialize, GatherScatterAndBroadcast) {
  EXPECT_EQ(materialize({CollectiveKind::kAllGather, mib(1), ""}, 8).num_steps(), 3);
  EXPECT_EQ(materialize({CollectiveKind::kAllGather, mib(1), ""}, 6).num_steps(), 5);
  EXPECT_EQ(materialize({CollectiveKind::kReduceScatter, mib(1), ""}, 8).num_steps(), 3);
  EXPECT_EQ(materialize({CollectiveKind::kReduceScatter, mib(1), ""}, 6).num_steps(), 5);
  MaterializeOptions opts;
  opts.broadcast_root = 3;
  const auto bc = materialize({CollectiveKind::kBroadcast, mib(1), ""}, 8, opts);
  EXPECT_EQ(bc.num_steps(), 3);
  const collective::ChunkExecutor exec(bc, collective::InitMode::kBroadcast, 3);
  EXPECT_TRUE(exec.verify_all_complete());
}

TEST(Materialize, MaterializedAllReducesAreSemanticallyValid) {
  for (auto algo : {AllReduceAlgo::kRing, AllReduceAlgo::kRecursiveDoubling,
                    AllReduceAlgo::kHalvingDoubling, AllReduceAlgo::kSwing}) {
    MaterializeOptions opts;
    opts.allreduce = algo;
    EXPECT_TRUE(collective::is_valid_allreduce(
        materialize({CollectiveKind::kAllReduce, mib(1), ""}, 16, opts)));
  }
}

TEST(Materialize, RejectsBadRequests) {
  EXPECT_THROW((void)materialize({CollectiveKind::kAllReduce, Bytes(0.0), ""}, 8),
               psd::InvalidArgument);
}

TEST(MaterializeSequence, ConcatenatesAll) {
  const std::vector<CollectiveRequest> reqs{
      {CollectiveKind::kAllToAll, mib(1), "a"},
      {CollectiveKind::kAllReduce, mib(2), "b"},
  };
  const auto sched = materialize_sequence(reqs, 8);
  EXPECT_EQ(sched.num_steps(), 7 + 6);
  EXPECT_THROW((void)materialize_sequence({}, 8), psd::InvalidArgument);
}

TEST(Generators, DataParallelBuckets) {
  const auto reqs = data_parallel_sync({gib(1), 4});
  ASSERT_EQ(reqs.size(), 4u);
  for (const auto& r : reqs) {
    EXPECT_EQ(r.kind, CollectiveKind::kAllReduce);
    EXPECT_DOUBLE_EQ(r.size.mib(), 256.0);
  }
  EXPECT_DOUBLE_EQ(total_bytes(reqs).gib(), 1.0);
  EXPECT_THROW((void)data_parallel_sync({gib(1), 0}), psd::InvalidArgument);
}

TEST(Generators, MoeDispatchCombinePairs) {
  const auto reqs = moe_dispatch_combine({mib(8), 3});
  ASSERT_EQ(reqs.size(), 6u);
  for (const auto& r : reqs) EXPECT_EQ(r.kind, CollectiveKind::kAllToAll);
  EXPECT_EQ(reqs[0].tag, "moe-dispatch-0");
  EXPECT_EQ(reqs[1].tag, "moe-combine-0");
}

TEST(Generators, TensorParallelTwoPerLayer) {
  const auto reqs = tensor_parallel_activations({mib(4), 5});
  EXPECT_EQ(reqs.size(), 10u);
  EXPECT_DOUBLE_EQ(total_bytes(reqs).mib(), 40.0);
}

TEST(Generators, TrainingIterationComposition) {
  TrainingIterationSpec spec;
  spec.tp = {mib(2), 2};     // 4 fwd + 4 bwd AllReduces
  spec.moe = {mib(8), 1};    // 2 All-to-Alls
  spec.dp = {mib(512), 4};   // 4 AllReduces
  const auto reqs = training_iteration(spec);
  EXPECT_EQ(reqs.size(), 4u + 2u + 4u + 4u);
  // Phases appear in order: tp fwd, moe, tp bwd, dp.
  EXPECT_EQ(reqs[0].tag.substr(0, 2), "tp");
  EXPECT_EQ(reqs[4].tag.substr(0, 3), "moe");
  EXPECT_EQ(reqs[6].tag.substr(0, 2), "tp");
  EXPECT_EQ(reqs[10].tag.substr(0, 2), "dp");
}

TEST(Generators, TrainingIterationPartialPhases) {
  TrainingIterationSpec dp_only;
  dp_only.dp = {gib(2), 8};
  EXPECT_EQ(training_iteration(dp_only).size(), 8u);

  TrainingIterationSpec none;
  EXPECT_THROW((void)training_iteration(none), psd::InvalidArgument);
}

TEST(Generators, KindNames) {
  EXPECT_STREQ(to_string(CollectiveKind::kAllReduce), "allreduce");
  EXPECT_STREQ(to_string(CollectiveKind::kAllToAll), "alltoall");
  EXPECT_STREQ(to_string(CollectiveKind::kBroadcast), "broadcast");
}

}  // namespace
}  // namespace psd::workload
