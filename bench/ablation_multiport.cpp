// Ablation (paper §4 future work: multi-ported collectives): dual-port GPUs
// run union-of-matchings steps. The mirrored All-to-All (rotation i together
// with rotation n−i) halves the step count relative to the single-port
// transpose — halving both the per-step α overhead and, crucially, the
// number of reconfigurations the matched schedule must pay for.
#include <cstdio>

#include "psd/collective/algorithms.hpp"
#include "psd/core/multi_port.hpp"
#include "psd/core/optimizers.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/table.hpp"

int main() {
  using namespace psd;
  const int n = 64;

  // Single-port domain: one 800 Gbps transceiver, directed ring base.
  const auto ring = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle single_oracle(ring, gbps(800));
  // Dual-port domain: two transceivers per GPU, cw + ccw ring base (same
  // total injection bandwidth per GPU as doubling the port count would).
  const auto dual_base = topo::coprime_ring_union(n, gbps(800), {1, n - 1});
  const flow::ThetaOracle dual_oracle(dual_base, gbps(800));

  core::CostParams params;
  params.alpha = nanoseconds(100);
  params.delta = nanoseconds(100);
  params.b = gbps(800);

  std::printf("Ablation: single-port transpose vs dual-port mirrored "
              "All-to-All (n=%d, M=16 MiB)\n\n", n);
  TextTable table;
  table.set_header({"alpha_r", "1-port OPT", "1-port reconfigs",
                    "2-port OPT", "2-port reconfigs", "2-port/1-port"});

  const auto transpose = collective::alltoall_transpose(n, mib(16));
  for (double ar_us : {0.1, 1.0, 10.0, 100.0, 1000.0}) {
    params.alpha_r = microseconds(ar_us);
    const core::ProblemInstance single(transpose, single_oracle, params);
    const auto p1 = core::optimal_plan(single);

    const core::MultiPortInstance dual(
        core::mirrored_alltoall_steps(n, mib(16)), dual_oracle, params, 2);
    const auto p2 = core::optimal_multi_port_plan(dual);

    table.add_row({to_string(params.alpha_r),
                   to_string(p1.total_time()),
                   std::to_string(p1.num_reconfigurations),
                   to_string(p2.total_time()),
                   std::to_string(p2.num_reconfigurations),
                   fmt_double(p2.total_time() / p1.total_time(), 3)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nthe dual-port mirrored schedule needs ~half the steps, so "
              "its advantage grows with alpha_r (fewer reconfigurations) and "
              "with alpha (fewer step latencies).\n");
  return 0;
}
