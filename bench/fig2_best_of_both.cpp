// Figure 2: OPT vs the best of both baselines — the transitional regime
// where adaptively deciding when to reconfigure beats both always-matched
// (naive BvN) and never-matched (static ring). The diagonal band is where
// mixed schedules win strictly. Printed for the halving/doubling AllReduce
// (as in Figures 1a/1e) and for All-to-All, whose 63 distinct rotation
// distances make per-step decisions matter most.
#include "heatmap_common.hpp"

int main() {
  psd::bench::HeatmapSpec hd;
  hd.figure = "Figure 2";
  hd.workload = "AllReduce, recursive halving/doubling [30]";
  hd.alpha = psd::nanoseconds(100);
  hd.baseline = psd::bench::Baseline::kBestOfBoth;
  hd.build = psd::bench::halving_doubling_builder();
  int rc = psd::bench::run_heatmap(hd);

  psd::bench::HeatmapSpec a2a = hd;
  a2a.figure = "Figure 2 (All-to-All)";
  a2a.workload = "All-to-All (transpose)";
  a2a.build = psd::bench::alltoall_builder();
  return rc + psd::bench::run_heatmap(a2a);
}
