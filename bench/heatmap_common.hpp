// Shared harness for the Figure 1 / Figure 2 heatmap benches.
//
// Reproduces the evaluation setup of §3.4: n = 64 GPUs, one 800 Gbps link
// each, δ = 100 ns, base topology = directed ring, AllReduce via recursive
// halving/doubling [30] and Swing [32], plus All-to-All (transpose). Each
// bench sweeps reconfiguration delay α_r (columns) against message size
// (rows) and prints the speedup of the optimized schedule (OPT) against a
// baseline, as an aligned table followed by machine-readable CSV.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "psd/collective/algorithms.hpp"
#include "psd/core/planner.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/table.hpp"

namespace psd::bench {

inline constexpr int kNumGpus = 64;

/// α_r sweep: 100 ns to 1 ms in half-decade steps (the x-axis of Fig. 1).
inline std::vector<TimeNs> reconfig_delays() {
  return {nanoseconds(100), nanoseconds(316), microseconds(1),
          microseconds(3.16), microseconds(10), microseconds(31.6),
          microseconds(100), microseconds(316), milliseconds(1)};
}

/// Message-size sweep: 16 KiB to 1 GiB in powers of 4 (the y-axis of Fig. 1).
inline std::vector<Bytes> message_sizes() {
  return {kib(16), kib(64), kib(256), mib(1), mib(4),
          mib(16), mib(64), mib(256), gib(1)};
}

enum class Baseline { kNaiveBvn, kStaticRing, kBestOfBoth };

inline const char* baseline_name(Baseline b) {
  switch (b) {
    case Baseline::kNaiveBvn:
      return "naive per-step BvN reconfiguration";
    case Baseline::kStaticRing:
      return "static ring topology";
    case Baseline::kBestOfBoth:
      return "best of {naive BvN, static ring}";
  }
  return "?";
}

using ScheduleBuilder = std::function<collective::CollectiveSchedule(int, Bytes)>;

struct HeatmapSpec {
  std::string figure;     // e.g. "Figure 1a"
  std::string workload;   // e.g. "AllReduce, recursive halving/doubling"
  TimeNs alpha;           // fixed per-step latency
  Baseline baseline = Baseline::kNaiveBvn;
  ScheduleBuilder build;
};

/// Runs the sweep and prints the heatmap. Returns 0 on success.
inline int run_heatmap(const HeatmapSpec& spec) {
  const auto delays = reconfig_delays();
  const auto sizes = message_sizes();

  core::CostParams params;
  params.alpha = spec.alpha;
  params.delta = nanoseconds(100);
  params.alpha_r = delays.front();
  params.b = gbps(800);
  core::Planner planner(topo::directed_ring(kNumGpus, gbps(800)), params);

  std::printf("%s: %s, n=%d, b=800 Gbps, delta=100 ns, alpha=%s\n",
              spec.figure.c_str(), spec.workload.c_str(), kNumGpus,
              to_string(spec.alpha).c_str());
  std::printf("Speedup of OPT (Eq. 7 DP schedule) vs %s\n",
              baseline_name(spec.baseline));
  std::printf("rows: per-GPU message size M; cols: reconfiguration delay alpha_r\n\n");

  TextTable table;
  std::vector<std::string> header{"M \\ a_r"};
  for (const auto& d : delays) header.push_back(to_string(d));
  table.set_header(header);

  TextTable csv;
  csv.set_header({"figure", "message_bytes", "alpha_r_ns", "opt_ns", "bvn_ns",
                  "static_ns", "speedup"});

  for (const auto& m : sizes) {
    const auto sched = spec.build(kNumGpus, m);
    std::vector<std::string> row{to_string(m)};
    for (const auto& ar : delays) {
      core::CostParams p = params;
      p.alpha_r = ar;
      planner.set_params(p);
      const auto r = planner.plan(sched);
      double speedup = 1.0;
      switch (spec.baseline) {
        case Baseline::kNaiveBvn:
          speedup = r.speedup_vs_bvn();
          break;
        case Baseline::kStaticRing:
          speedup = r.speedup_vs_static();
          break;
        case Baseline::kBestOfBoth:
          speedup = r.speedup_vs_best_baseline();
          break;
      }
      row.push_back(fmt_speedup(speedup));
      csv.add_row({spec.figure, fmt_double(m.count(), 0),
                   fmt_double(ar.ns(), 0),
                   fmt_double(r.optimal.total_time().ns(), 1),
                   fmt_double(r.naive_bvn.total_time().ns(), 1),
                   fmt_double(r.static_base.total_time().ns(), 1),
                   fmt_double(speedup, 4)});
    }
    table.add_row(std::move(row));
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf("\n--- CSV ---\n%s\n", csv.render_csv().c_str());
  return 0;
}

inline ScheduleBuilder halving_doubling_builder() {
  return [](int n, Bytes m) {
    return collective::halving_doubling_allreduce(n, m);
  };
}

inline ScheduleBuilder swing_builder() {
  return [](int n, Bytes m) { return collective::swing_allreduce(n, m); };
}

inline ScheduleBuilder alltoall_builder() {
  return [](int n, Bytes m) { return collective::alltoall_transpose(n, m); };
}

}  // namespace psd::bench
