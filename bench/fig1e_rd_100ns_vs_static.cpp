// Figure 1e: OPT vs the static ring; recursive (halving/)doubling, alpha = 100 ns.
#include "heatmap_common.hpp"

int main() {
  psd::bench::HeatmapSpec spec;
  spec.figure = "Figure 1e";
  spec.workload = "AllReduce, recursive halving/doubling [30]";
  spec.alpha = psd::nanoseconds(100);
  spec.baseline = psd::bench::Baseline::kStaticRing;
  spec.build = psd::bench::halving_doubling_builder();
  return psd::bench::run_heatmap(spec);
}
