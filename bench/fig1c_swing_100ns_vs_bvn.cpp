// Figure 1c: OPT vs naive BvN schedules; Swing, alpha = 100 ns.
#include "heatmap_common.hpp"

int main() {
  psd::bench::HeatmapSpec spec;
  spec.figure = "Figure 1c";
  spec.workload = "AllReduce, Swing [32]";
  spec.alpha = psd::nanoseconds(100);
  spec.baseline = psd::bench::Baseline::kNaiveBvn;
  spec.build = psd::bench::swing_builder();
  return psd::bench::run_heatmap(spec);
}
