// Ablation (research agenda: "tackling variable reconfiguration delays"):
// constant α_r versus a port-count-dependent delay model. Under per-port
// pricing, pairwise-exchange collectives (which move every port each step)
// pay full price, while sparse patterns get cheaper reconfigurations.
#include <cstdio>

#include "psd/collective/algorithms.hpp"
#include "psd/core/optimizers.hpp"
#include "psd/photonic/reconfig_delay.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/table.hpp"

int main() {
  using namespace psd;
  const int n = 64;
  const auto ring = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));

  core::CostParams params;
  params.alpha = nanoseconds(100);
  params.delta = nanoseconds(100);
  params.b = gbps(800);
  // Constant model: α_r = 10 µs. Per-port model calibrated to the same
  // worst case: fixed 1 µs + 70.3 ns per changed port (128 ports -> ~10 µs).
  params.alpha_r = microseconds(10);
  const photonic::PerPortDelayModel per_port(microseconds(1), nanoseconds(70.3));

  core::ModelExtensions with_port;
  with_port.delay_model = &per_port;
  with_port.base_config = topo::Matching::rotation(n, 1);

  std::printf("Ablation: constant alpha_r=10us vs per-port delay "
              "(1us + 70.3ns/port), n=%d ring\n\n", n);
  TextTable table;
  table.set_header({"collective", "M", "const: opt_ms", "const: reconfigs",
                    "per-port: opt_ms", "per-port: reconfigs"});

  for (const char* algo : {"hd", "swing", "a2a", "broadcast"}) {
    for (double m_mib : {4.0, 64.0}) {
      collective::CollectiveSchedule sched = [&]() {
        const std::string a = algo;
        if (a == "hd") return collective::halving_doubling_allreduce(n, mib(m_mib));
        if (a == "swing") return collective::swing_allreduce(n, mib(m_mib));
        if (a == "a2a") return collective::alltoall_transpose(n, mib(m_mib));
        return collective::binomial_broadcast(n, 0, mib(m_mib));
      }();
      const core::ProblemInstance inst(sched, oracle, params);
      const auto constant = core::optimal_plan(inst);
      const auto perport = core::optimal_plan(inst, with_port);
      table.add_row({std::string(algo), fmt_double(m_mib, 0) + " MiB",
                     fmt_double(constant.total_time().ms(), 3),
                     std::to_string(constant.num_reconfigurations),
                     fmt_double(perport.total_time().ms(), 3),
                     std::to_string(perport.num_reconfigurations)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nbinomial broadcast moves few ports early on, so per-port "
              "pricing makes its early reconfigurations nearly free.\n");
  return 0;
}
