// Ablation (research agenda: "simplifying the congestion factor"): how far
// is the cheap hop-capacity throughput proxy θ̂ from the exact maximum
// concurrent flow θ on the steps of real collectives, and what would the
// error do to predicted step completion times?
#include <cstdio>
#include <vector>

#include "psd/collective/algorithms.hpp"
#include "psd/flow/theta.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/rng.hpp"
#include "psd/util/table.hpp"

namespace {

using namespace psd;

struct Row {
  std::string pattern;
  double exact;
  double proxy;
};

void collect(const collective::CollectiveSchedule& sched,
             const flow::ThetaOracle& oracle, const topo::Graph& g,
             std::vector<Row>& rows) {
  for (int i = 0; i < sched.num_steps(); ++i) {
    const auto& m = sched.step(i).matching;
    rows.push_back({sched.name() + "/" + sched.step(i).label,
                    oracle.theta(m),
                    flow::theta_upper_bound_hop_capacity(g, m, gbps(800))});
  }
}

}  // namespace

int main() {
  const int n = 64;
  const auto ring = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));

  std::vector<Row> rows;
  collect(collective::halving_doubling_allreduce(n, mib(1)), oracle, ring, rows);
  collect(collective::swing_allreduce(n, mib(1)), oracle, ring, rows);
  // All-to-All has 63 steps; sample a few distances.
  const auto a2a = collective::alltoall_transpose(n, mib(1));
  for (int i : {0, 7, 15, 31, 47, 62}) {
    const auto& m = a2a.step(i).matching;
    rows.push_back({"alltoall/rotation-" + std::to_string(i + 1),
                    oracle.theta(m),
                    flow::theta_upper_bound_hop_capacity(ring, m, gbps(800))});
  }
  Rng rng(17);
  for (int t = 0; t < 4; ++t) {
    topo::Matching m(n);
    const auto perm = rng.permutation(n);
    for (int j = 0; j < n; ++j) {
      if (perm[static_cast<std::size_t>(j)] != j) {
        m.set(j, perm[static_cast<std::size_t>(j)]);
      }
    }
    rows.push_back({"random-permutation-" + std::to_string(t),
                    oracle.theta(m),
                    flow::theta_upper_bound_hop_capacity(ring, m, gbps(800))});
  }
  // Adversarial for the proxy: k parallel same-direction flows share links
  // but the bound only sees aggregate hop demand.
  for (int k : {2, 4, 8, 16}) {
    topo::Matching m(n);
    for (int j = 0; j < k; ++j) m.set(j, (j + n / 2) % n);
    rows.push_back({"parallel-flows-" + std::to_string(k), oracle.theta(m),
                    flow::theta_upper_bound_hop_capacity(ring, m, gbps(800))});
  }

  std::printf("Ablation: exact theta(G, M) vs hop-capacity proxy on the n=%d "
              "directed ring\n", n);
  std::printf("DCT error = proxy-predicted serialization / true serialization "
              "(values < 1 underestimate congestion)\n\n");

  TextTable table;
  table.set_header({"pattern", "theta_exact", "theta_proxy", "proxy/exact",
                    "DCT error"});
  double worst = 1.0;
  for (const auto& r : rows) {
    const double ratio = r.proxy / r.exact;
    worst = std::max(worst, ratio);
    table.add_row({r.pattern, fmt_double(r.exact, 4), fmt_double(r.proxy, 4),
                   fmt_double(ratio, 3), fmt_double(r.exact / r.proxy, 3)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nworst-case optimism of the proxy: %.2fx "
              "(proxy is exact on uniform rotations, loose on asymmetric "
              "patterns)\n", worst);
  return 0;
}
