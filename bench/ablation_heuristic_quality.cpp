// Ablation (research agenda: "fast heuristics"): quality and runtime of the
// myopic threshold heuristic against the exact DP across the α_r sweep, on
// real collectives and on adversarial random instances.
#include <chrono>
#include <cstdio>

#include "psd/collective/algorithms.hpp"
#include "psd/core/optimizers.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/rng.hpp"
#include "psd/util/table.hpp"

namespace {

using namespace psd;
using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

}  // namespace

int main() {
  const int n = 64;
  const auto ring = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));

  core::CostParams params;
  params.alpha = nanoseconds(100);
  params.delta = nanoseconds(100);
  params.b = gbps(800);

  std::printf("Ablation: greedy threshold heuristic vs exact DP (n=%d ring)\n\n", n);
  TextTable table;
  table.set_header({"collective", "M", "alpha_r", "greedy/opt", "dp_us",
                    "greedy_us"});

  for (const char* algo : {"hd", "swing", "a2a"}) {
    for (double m_mib : {1.0, 16.0, 256.0}) {
      const auto sched =
          std::string(algo) == "hd"
              ? collective::halving_doubling_allreduce(n, mib(m_mib))
              : (std::string(algo) == "swing"
                     ? collective::swing_allreduce(n, mib(m_mib))
                     : collective::alltoall_transpose(n, mib(m_mib)));
      for (double ar_us : {1.0, 10.0, 100.0}) {
        params.alpha_r = microseconds(ar_us);
        const core::ProblemInstance inst(sched, oracle, params);

        const auto t0 = Clock::now();
        const auto opt = core::optimal_plan(inst);
        const auto t1 = Clock::now();
        const auto greedy = core::greedy_threshold_plan(inst);
        const auto t2 = Clock::now();

        table.add_row({std::string(algo), fmt_double(m_mib, 0) + " MiB",
                       fmt_double(ar_us, 0) + " us",
                       fmt_double(greedy.total_time() / opt.total_time(), 4),
                       fmt_double(us_between(t0, t1), 1),
                       fmt_double(us_between(t1, t2), 1)});
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);

  // Adversarial random instances: where does myopia hurt the most?
  Rng rng(99);
  double worst_ratio = 1.0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::pair<Bytes, topo::Matching>> raw;
    const int steps = rng.uniform_int(4, 16);
    for (int i = 0; i < steps; ++i) {
      topo::Matching m(n);
      const auto perm = rng.permutation(n);
      for (int j = 0; j < n; ++j) {
        if (perm[static_cast<std::size_t>(j)] != j) {
          m.set(j, perm[static_cast<std::size_t>(j)]);
        }
      }
      if (m.active_pairs() == 0) m.set(0, 1);
      raw.emplace_back(kib(rng.uniform(16.0, 65536.0)), std::move(m));
    }
    params.alpha_r = microseconds(rng.uniform(0.5, 200.0));
    const core::ProblemInstance inst(raw, oracle, params);
    const double ratio = core::greedy_threshold_plan(inst).total_time() /
                         core::optimal_plan(inst).total_time();
    worst_ratio = std::max(worst_ratio, ratio);
  }
  std::printf("\nworst greedy/opt over 200 random instances: %.3f\n", worst_ratio);
  return 0;
}
