// Figure 1d: OPT vs naive BvN schedules; All-to-All, alpha = 100 ns.
#include "heatmap_common.hpp"

int main() {
  psd::bench::HeatmapSpec spec;
  spec.figure = "Figure 1d";
  spec.workload = "All-to-All (transpose)";
  spec.alpha = psd::nanoseconds(100);
  spec.baseline = psd::bench::Baseline::kNaiveBvn;
  spec.build = psd::bench::alltoall_builder();
  return psd::bench::run_heatmap(spec);
}
