// Ablation (research agenda: "overlapping reconfiguration with
// computation"): per-step compute phases (e.g. local reduction of received
// data) can hide reconfiguration delay. Sweeps the compute-to-reconfig
// ratio and reports how much of α_r stays exposed and how the optimizer's
// decisions shift toward reconfiguring.
#include <cstdio>

#include "psd/collective/algorithms.hpp"
#include "psd/core/optimizers.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/table.hpp"

int main() {
  using namespace psd;
  const int n = 64;
  const auto ring = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));

  core::CostParams params;
  params.alpha = nanoseconds(100);
  params.delta = nanoseconds(100);
  params.alpha_r = microseconds(50);
  params.b = gbps(800);

  const auto sched = collective::halving_doubling_allreduce(n, mib(16));
  const core::ProblemInstance inst(sched, oracle, params);

  std::printf("Ablation: hiding alpha_r=50us behind per-step compute "
              "(halving/doubling AllReduce, n=%d, M=16 MiB)\n\n", n);
  TextTable table;
  table.set_header({"compute/alpha_r", "opt_ms", "exposed reconfig_ms",
                    "reconfigs", "speedup vs no-overlap"});

  core::ModelExtensions none;
  const auto baseline = core::optimal_plan(inst, none);

  for (double ratio : {0.0, 0.25, 0.5, 0.75, 1.0, 1.5}) {
    core::ModelExtensions ext;
    ext.compute_before_step.assign(
        static_cast<std::size_t>(inst.num_steps()),
        TimeNs(params.alpha_r.ns() * ratio));
    const auto plan = core::optimal_plan(inst, ext);
    // Comparable completion: drop the compute itself (it exists in both
    // worlds; only its ability to hide reconfig differs).
    const TimeNs comparable = plan.total_time() - plan.breakdown.compute;
    table.add_row({fmt_double(ratio, 2), fmt_double(comparable.ms(), 3),
                   fmt_double(plan.breakdown.reconfiguration.ms(), 3),
                   std::to_string(plan.num_reconfigurations),
                   fmt_speedup(baseline.total_time() / comparable)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nonce compute >= alpha_r the reconfiguration is free and the "
              "optimizer reconfigures every step.\n");
  return 0;
}
