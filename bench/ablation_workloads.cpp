// Ablation: end-to-end training-iteration workloads (the traffic the
// paper's introduction motivates) across reconfiguration delays. Shows how
// much an adaptive fabric buys a whole iteration — not just one collective —
// and how the algorithm choice (including Bruck vs transpose All-to-All)
// interacts with α_r.
#include <cstdio>

#include "psd/core/planner.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/table.hpp"
#include "psd/workload/workload.hpp"

int main() {
  using namespace psd;
  const int n = 64;

  workload::TrainingIterationSpec spec;
  spec.tp = {mib(8), 4};
  spec.moe = {mib(16), 2};
  spec.dp = {gib(1), 8};
  const auto requests = workload::training_iteration(spec);

  core::CostParams params;
  params.alpha = nanoseconds(100);
  params.delta = nanoseconds(100);
  params.b = gbps(800);
  params.alpha_r = nanoseconds(100);
  core::Planner planner(topo::directed_ring(n, gbps(800)), params);

  std::printf("Ablation: LLM training iteration on n=%d (TP 4 layers x 8 MiB, "
              "MoE 2 x 16 MiB, DP 1 GiB / 8 buckets)\n\n", n);

  TextTable table;
  table.set_header({"alpha_r", "a2a algo", "static", "naive BvN", "OPT",
                    "reconfigs", "speedup vs best baseline"});
  for (double ar_us : {0.1, 1.0, 10.0, 100.0, 1000.0}) {
    for (auto a2a : {workload::AllToAllAlgo::kTranspose,
                     workload::AllToAllAlgo::kBruck}) {
      workload::MaterializeOptions opts;
      opts.allreduce = workload::AllReduceAlgo::kHalvingDoubling;
      opts.alltoall = a2a;
      const auto sched = workload::materialize_sequence(requests, n, opts);
      core::CostParams p = params;
      p.alpha_r = microseconds(ar_us);
      planner.set_params(p);
      const auto r = planner.plan(sched);
      table.add_row(
          {to_string(p.alpha_r),
           a2a == workload::AllToAllAlgo::kTranspose ? "transpose" : "bruck",
           to_string(r.static_base.total_time()),
           to_string(r.naive_bvn.total_time()),
           to_string(r.optimal.total_time()),
           std::to_string(r.optimal.num_reconfigurations),
           fmt_double(r.speedup_vs_best_baseline(), 3)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nBruck's log-step All-to-All needs fewer reconfigurations, "
              "which pays off exactly when alpha_r is large.\n");
  return 0;
}
