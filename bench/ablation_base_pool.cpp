// Ablation (§3.3 extension): a pool of co-prime ring base topologies versus
// the single stride-1 ring. The DP may hop between bases mid-collective; on
// All-to-All the rotation distances sweep 1..n−1, so different strides are
// cheap for different step ranges.
#include <cstdio>

#include "psd/collective/algorithms.hpp"
#include "psd/core/multi_base.hpp"
#include "psd/core/optimizers.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/table.hpp"

int main() {
  using namespace psd;
  const int n = 64;
  const auto ring1 = topo::directed_ring(n, gbps(800), 1);
  const auto ring5 = topo::directed_ring(n, gbps(800), 5);
  const auto ring23 = topo::directed_ring(n, gbps(800), 23);
  const flow::ThetaOracle o1(ring1, gbps(800));
  const flow::ThetaOracle o5(ring5, gbps(800));
  const flow::ThetaOracle o23(ring23, gbps(800));

  core::CostParams params;
  params.alpha = nanoseconds(100);
  params.delta = nanoseconds(100);
  params.b = gbps(800);

  std::printf("Ablation: base-topology pool {ring stride 1} vs {1,5} vs {1,5,23} "
              "(n=%d, All-to-All)\n\n", n);
  TextTable table;
  table.set_header({"M", "alpha_r", "single_ms", "pool2_ms", "pool3_ms",
                    "pool3 speedup", "pool3 reconfigs"});

  for (double m_mib : {1.0, 4.0, 16.0, 64.0, 256.0}) {
    const auto sched = collective::alltoall_transpose(n, mib(m_mib));
    for (double ar_us : {1.0, 10.0, 100.0}) {
      params.alpha_r = microseconds(ar_us);
      const core::MultiBaseInstance single(sched, {&o1}, params);
      const core::MultiBaseInstance pool2(sched, {&o1, &o5}, params);
      const core::MultiBaseInstance pool3(sched, {&o1, &o5, &o23}, params);
      const auto p1 = core::optimal_multi_base_plan(single);
      const auto p2 = core::optimal_multi_base_plan(pool2);
      const auto p3 = core::optimal_multi_base_plan(pool3);
      table.add_row({fmt_double(m_mib, 0) + " MiB",
                     fmt_double(ar_us, 0) + " us",
                     fmt_double(p1.total_time().ms(), 3),
                     fmt_double(p2.total_time().ms(), 3),
                     fmt_double(p3.total_time().ms(), 3),
                     fmt_speedup(p1.total_time() / p3.total_time()),
                     std::to_string(p3.num_reconfigurations)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\npool contains the single ring, so pool results are never "
              "worse; gains concentrate where alpha_r is large relative to "
              "per-step serialization.\n");
  return 0;
}
