// google-benchmark microbenchmarks for the solver substrates: ring θ closed
// form, Garg–Könemann FPTAS, the exact simplex LP, Birkhoff decomposition,
// Hopcroft–Karp and the Eq. 7 DP optimizer.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "psd/bvn/birkhoff.hpp"
#include "psd/serve/service.hpp"
#include "psd/serve/transport.hpp"
#include "psd/bvn/hopcroft_karp.hpp"
#include "psd/collective/algorithms.hpp"
#include "psd/core/algo_select.hpp"
#include "psd/core/optimizers.hpp"
#include "psd/core/pipelined_cost.hpp"
#include "psd/core/planner.hpp"
#include "psd/flow/garg_konemann.hpp"
#include "psd/flow/mcf_lp.hpp"
#include "psd/flow/ring_theta.hpp"
#include "psd/flow/theta.hpp"
#include "psd/sweep/driver.hpp"
#include "psd/sweep/shared_theta_cache.hpp"
#include "psd/topo/builders.hpp"
#include "psd/topo/delta.hpp"
#include "psd/util/rng.hpp"
#include "psd/util/thread_pool.hpp"

namespace {

using namespace psd;

// θ-only closed form: the planner's actual query (O(n + k), no flow
// materialization). Pre-sparse-refactor this benchmark materialized the full
// K×E flow matrix and was quadratic in n.
void BM_RingThetaClosedForm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = topo::directed_ring(n, gbps(800));
  const auto m = topo::Matching::rotation(n, n / 2 - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::ring_theta_only(g, m, gbps(800)));
  }
}
BENCHMARK(BM_RingThetaClosedForm)->Arg(64)->Arg(256)->Arg(1024);

// Full routing materialization in the sparse CSR FlowAssignment: O(n + total
// path hops) — inherently superlinear for long rotations, but with no K×E
// zero-fill. Only flow-level consumers (the simulator) pay this.
void BM_RingFlowMaterialize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = topo::directed_ring(n, gbps(800));
  const auto m = topo::Matching::rotation(n, n / 2 - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::ring_concurrent_flow(g, m, gbps(800)));
  }
}
BENCHMARK(BM_RingFlowMaterialize)->Arg(64)->Arg(256)->Arg(1024);

// Default solver: Fleischer phase schedule over the bucket-queue SSSP with
// batched demand routings per visit (see flow/garg_konemann.hpp). Arg(128)
// tracks the large-domain scaling the phase schedule opened up.
void BM_GargKonemann(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = topo::torus_2d(n / 8, 8, gbps(800));
  const auto m = topo::Matching::rotation(n, n / 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flow::gk_concurrent_flow(g, m, gbps(800), {.epsilon = 0.1}));
  }
}
BENCHMARK(BM_GargKonemann)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

// Cold reference: fresh Dijkstra per push (the pre-warm-start behavior).
void BM_GargKonemannCold(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = topo::torus_2d(n / 8, 8, gbps(800));
  const auto m = topo::Matching::rotation(n, n / 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::gk_concurrent_flow(
        g, m, gbps(800), {.epsilon = 0.1, .warm_start = false}));
  }
}
BENCHMARK(BM_GargKonemannCold)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

// The PR 2 (1+ε)³ reuse-window algorithm, kept measurable for continuity:
// the delta between this and BM_GargKonemann is what the phase schedule +
// bucket queue + batched routings bought.
void BM_GargKonemannWindowReuse(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = topo::torus_2d(n / 8, 8, gbps(800));
  const auto m = topo::Matching::rotation(n, n / 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::gk_concurrent_flow(
        g, m, gbps(800), {.epsilon = 0.1, .phase_schedule = false}));
  }
}
BENCHMARK(BM_GargKonemannWindowReuse)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

// Phase schedule with the exact binary-heap engine: isolates the bucket
// queue's contribution from the schedule's.
void BM_GargKonemannPhaseHeap(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = topo::torus_2d(n / 8, 8, gbps(800));
  const auto m = topo::Matching::rotation(n, n / 3);
  flow::GargKonemannOptions opts{.epsilon = 0.1};
  opts.sp_engine = flow::GkSpEngine::kBinaryHeap;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::gk_concurrent_flow(g, m, gbps(800), opts));
  }
}
BENCHMARK(BM_GargKonemannPhaseHeap)->Arg(64)->Unit(benchmark::kMillisecond);

// θ-only FPTAS: what the ThetaOracle calls on non-ring fallback — tracks
// only the O(E) aggregate load, no per-commodity entries.
void BM_GargKonemannThetaOnly(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = topo::torus_2d(n / 8, 8, gbps(800));
  const auto m = topo::Matching::rotation(n, n / 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flow::gk_theta_only(g, m, gbps(800), {.epsilon = 0.1}));
  }
}
BENCHMARK(BM_GargKonemannThetaOnly)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_ExactLpSmall(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = topo::bidirectional_ring(n, gbps(800));
  const auto m = topo::Matching::rotation(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::exact_concurrent_flow(g, m, gbps(800)));
  }
}
BENCHMARK(BM_ExactLpSmall)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

/// Sparse-support decomposition input: a convex combination of 8 rotations.
Matrix rotation_mix(int n, int terms, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int t = 0; t < terms; ++t) {
    const auto rot = topo::Matching::rotation(n, rng.uniform_int(1, n - 1));
    const double w = rng.uniform(0.1, 1.0);
    for (const auto& [s, d] : rot.pairs()) {
      m(static_cast<std::size_t>(s), static_cast<std::size_t>(d)) += w;
    }
  }
  return m;
}

void BM_Birkhoff(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix m = rotation_mix(n, 8, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bvn::birkhoff_decompose(m));
  }
}
BENCHMARK(BM_Birkhoff)->Arg(16)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

// Full-rebuild reference path, for direct incremental-vs-rebuild comparison.
void BM_BirkhoffRebuildReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix m = rotation_mix(n, 8, 5);
  const bvn::BvnOptions opts{.tol = 1e-9, .allow_partial = true, .incremental = false};
  for (auto _ : state) {
    benchmark::DoNotOptimize(bvn::birkhoff_decompose(m, opts));
  }
}
BENCHMARK(BM_BirkhoffRebuildReference)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

// Dense support: the uniform doubly-stochastic matrix has all n² entries in
// its support and decomposes into n disjoint permutations — the worst case
// for the per-iteration support maintenance.
void BM_BirkhoffDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Matrix m(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (r != c) {
        m(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
            1.0 / static_cast<double>(n - 1);
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bvn::birkhoff_decompose(m));
  }
}
BENCHMARK(BM_BirkhoffDense)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

// Threads axis for the pool-parallel support maintenance: Arg pair is
// (n, parallel?). On a single-core box both rows coincide (parallel_for
// inlines); on multi-core boxes the delta is the fan-out's win. Results are
// byte-identical either way (asserted in tests).
void BM_BirkhoffDenseParallel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool parallel = state.range(1) == 1;
  Matrix m(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (r != c) {
        m(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
            1.0 / static_cast<double>(n - 1);
      }
    }
  }
  const bvn::BvnOptions opts{.parallel = parallel};
  for (auto _ : state) {
    benchmark::DoNotOptimize(bvn::birkhoff_decompose(m, opts));
  }
  state.counters["threads"] = parallel
      ? static_cast<double>(util::ThreadPool::shared().size())
      : 1.0;
}
BENCHMARK(BM_BirkhoffDenseParallel)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMillisecond);

bvn::BipartiteGraph sparse_bipartite(int n, double avg_degree, std::uint64_t seed) {
  Rng rng(seed);
  bvn::BipartiteGraph g;
  g.n_left = g.n_right = n;
  g.adj.resize(static_cast<std::size_t>(n));
  for (int l = 0; l < n; ++l) {
    for (int r = 0; r < n; ++r) {
      if (rng.next_double() < avg_degree / n) {
        g.adj[static_cast<std::size_t>(l)].push_back(r);
      }
    }
  }
  return g;
}

void BM_HopcroftKarp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = sparse_bipartite(n, 8.0, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bvn::hopcroft_karp(g));
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(64)->Arg(512)->Arg(2048);

// Warm-start repair: drop one matched edge and re-augment — the unit of work
// the incremental Birkhoff loop performs per extraction.
void BM_HopcroftKarpWarmStart(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto g = sparse_bipartite(n, 8.0, 9);
  const auto full = bvn::hopcroft_karp(g);
  // Remove one matched edge from the graph and the matching.
  bvn::MatchingResult damaged = full;
  for (int l = 0; l < n; ++l) {
    const int r = damaged.match_left[static_cast<std::size_t>(l)];
    if (r >= 0) {
      auto& nbrs = g.adj[static_cast<std::size_t>(l)];
      nbrs.erase(std::find(nbrs.begin(), nbrs.end(), r));
      damaged.match_left[static_cast<std::size_t>(l)] = -1;
      damaged.match_right[static_cast<std::size_t>(r)] = -1;
      --damaged.size;
      break;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bvn::hopcroft_karp(g, damaged));
  }
}
BENCHMARK(BM_HopcroftKarpWarmStart)->Arg(512)->Arg(2048);

// Shared-cache hit path: heterogeneous KeyView lookup — hash of the
// borrowed destination vector + sharded LRU splice, no allocation (the
// temporary-Key copy this used to make is gone; compare against
// BM_ThetaOracleCacheHit for the private-cache equivalent).
void BM_SharedThetaCacheLookupHit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sweep::SharedThetaCache cache;
  const auto m = topo::Matching::rotation(n, n / 2 - 1);
  cache.insert(0x1234, m.destinations(), 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(0x1234, m.destinations()));
  }
}
BENCHMARK(BM_SharedThetaCacheLookupHit)->Arg(64)->Arg(1024);

// θ-oracle cached lookup: hash of the destination vector + LRU splice, no
// heap allocation. This is the planner's steady-state query.
void BM_ThetaOracleCacheHit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle oracle(g, gbps(800));
  const auto m = topo::Matching::rotation(n, n / 2 - 1);
  benchmark::DoNotOptimize(oracle.theta(m));  // warm the entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.theta(m));
  }
}
BENCHMARK(BM_ThetaOracleCacheHit)->Arg(64)->Arg(256)->Arg(1024);

// Miss path including insertion and LRU eviction: capacity 1 with two
// alternating matchings misses on every lookup. The ring closed form keeps
// the underlying solve cheap, so this isolates the cache machinery.
void BM_ThetaOracleCacheMissEvict(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = topo::directed_ring(n, gbps(800));
  flow::ThetaOptions opts;
  opts.cache_capacity = 1;
  const flow::ThetaOracle oracle(g, gbps(800), opts);
  const auto m1 = topo::Matching::rotation(n, 3);
  const auto m2 = topo::Matching::rotation(n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.theta(m1));
    benchmark::DoNotOptimize(oracle.theta(m2));
  }
}
BENCHMARK(BM_ThetaOracleCacheMissEvict)->Arg(64)->Arg(256);

void BM_ThetaOracleUncached(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = topo::directed_ring(n, gbps(800));
  flow::ThetaOptions opts;
  opts.use_cache = false;
  const flow::ThetaOracle oracle(g, gbps(800), opts);
  const auto m = topo::Matching::rotation(n, n / 2 - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.theta(m));
  }
}
BENCHMARK(BM_ThetaOracleUncached)->Arg(64)->Arg(256);

// --- Churn recovery ---------------------------------------------------
//
// Scenario: a circuit-partitioned multi-tenant domain — `n/8` isolated
// 8-node bidirectional rings, one per tenant, with one matching per tenant
// rotating its own ring (everyone else unmatched). Each matching's routed
// support is confined to its tenant's slice, so a link fault in tenant 0's
// ring must invalidate exactly one θ entry and leave the other tenants'
// plans untouched. (On a *connected* symmetric fabric a max-concurrent-flow
// support spans every edge — see docs/churn.md — so slice isolation is what
// makes edge-level invalidation bite.)

/// n/8 disjoint 8-node bidirectional rings: tenant t owns nodes
/// [8t, 8t+8).
topo::Graph tenant_ring_union(int n, Bandwidth bw) {
  topo::Graph g(n);
  for (int base = 0; base < n; base += 8) {
    for (int i = 0; i < 8; ++i) {
      const int a = base + i;
      const int b = base + (i + 1) % 8;
      g.add_edge(a, b, bw);
      g.add_edge(b, a, bw);
    }
  }
  return g;
}

/// Tenant t's matching: rotate ring t by 3 (multi-hop, so θ needs a real
/// flow solve), every other node unmatched.
std::vector<topo::Matching> tenant_matchings(int n) {
  std::vector<topo::Matching> out;
  out.reserve(static_cast<std::size_t>(n / 8));
  for (int base = 0; base < n; base += 8) {
    std::vector<int> dst(static_cast<std::size_t>(n), -1);
    for (int i = 0; i < 8; ++i) {
      dst[static_cast<std::size_t>(base + i)] = base + (i + 3) % 8;
    }
    out.push_back(topo::Matching::from_destinations(std::move(dst)));
  }
  return out;
}

// Incremental churn replan: one persistent support-tracking oracle absorbs a
// single-edge capacity droop in tenant 0's ring (factor 0.9999 — always
// restricting, so support-avoiding entries survive exactly) and re-solves
// every tenant's matching. Only tenant 0's entry is invalidated and
// re-solved (warm-restarted from its stashed GK paths); the other n/8 - 1
// are cache hits. Compare BM_ChurnRecoveryCold for the from-scratch
// baseline the ≥3× acceptance bound is measured against.
void BM_ChurnRecovery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto g = tenant_ring_union(n, gbps(800));
  flow::ThetaOptions opts;
  opts.epsilon = 0.1;
  opts.track_support = true;
  flow::ThetaOracle oracle(g, gbps(800), opts);
  const auto matchings = tenant_matchings(n);
  for (const auto& m : matchings) benchmark::DoNotOptimize(oracle.theta(m));
  const auto victim = g.edge(0);
  for (auto _ : state) {
    const auto dres = topo::apply_delta(
        g, topo::TopologyDelta{}.scale_capacity(victim.src, victim.dst, 0.9999));
    oracle.apply_topology_delta(dres);
    for (const auto& m : matchings) benchmark::DoNotOptimize(oracle.theta(m));
  }
}
BENCHMARK(BM_ChurnRecovery)->Arg(64)->Unit(benchmark::kMillisecond);

// Cold reference for BM_ChurnRecovery: the same droop-and-replan loop with a
// fresh oracle per event — every tenant's matching re-solves from scratch.
void BM_ChurnRecoveryCold(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto g = tenant_ring_union(n, gbps(800));
  flow::ThetaOptions opts;
  opts.epsilon = 0.1;
  opts.track_support = true;
  const auto matchings = tenant_matchings(n);
  const auto victim = g.edge(0);
  for (auto _ : state) {
    const auto dres = topo::apply_delta(
        g, topo::TopologyDelta{}.scale_capacity(victim.src, victim.dst, 0.9999));
    benchmark::DoNotOptimize(dres.epoch);
    flow::ThetaOracle oracle(g, gbps(800), opts);
    for (const auto& m : matchings) benchmark::DoNotOptimize(oracle.theta(m));
  }
}
BENCHMARK(BM_ChurnRecoveryCold)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_DpOptimizer(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  const int n = 64;
  const auto ring = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  core::CostParams params;
  params.alpha = nanoseconds(100);
  params.delta = nanoseconds(100);
  params.alpha_r = microseconds(10);
  params.b = gbps(800);
  std::vector<std::pair<Bytes, topo::Matching>> raw;
  Rng rng(13);
  for (int i = 0; i < steps; ++i) {
    raw.emplace_back(mib(1), topo::Matching::rotation(n, rng.uniform_int(1, n - 1)));
  }
  const core::ProblemInstance inst(raw, oracle, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimal_plan(inst));
  }
}
BENCHMARK(BM_DpOptimizer)->Arg(16)->Arg(128)->Arg(1024)->Arg(8192);

void BM_PlannerEndToEnd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::CostParams params;
  params.alpha = nanoseconds(100);
  params.delta = nanoseconds(100);
  params.alpha_r = microseconds(10);
  params.b = gbps(800);
  core::Planner planner(topo::directed_ring(n, gbps(800)), params);
  const auto sched = collective::halving_doubling_allreduce(n, mib(16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(sched));
  }
}
BENCHMARK(BM_PlannerEndToEnd)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

// Chunk-pipelined pricing of a DP-optimal plan: the max-plus recurrence over
// (steps × chunks) the selector pays once per chunk count. Args are
// (nodes, chunks); θ solves and the DP happen in setup, so this isolates the
// analytic recurrence itself — the marginal cost algo=auto adds per
// candidate per chunk count.
void BM_PipelinedStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int chunks = static_cast<int>(state.range(1));
  core::CostParams params;
  params.alpha = nanoseconds(100);
  params.delta = nanoseconds(100);
  params.alpha_r = microseconds(10);
  params.b = gbps(800);
  const auto ring = topo::directed_ring(n, gbps(800));
  const flow::ThetaOracle oracle(ring, gbps(800));
  const auto sched = collective::halving_doubling_allreduce(n, mib(64));
  const core::ProblemInstance inst(sched, oracle, params);
  const auto optimal = core::optimal_plan(inst);
  const core::PipelinedCostModel model(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.completion(optimal.choice, chunks));
  }
}
BENCHMARK(BM_PipelinedStep)->Args({64, 8})->Args({64, 64})->Args({256, 64});

// End-to-end size-adaptive selection: materialize + DP-solve + pipeline-
// price every candidate algorithm. Arg is the message size in KiB — 4 KiB
// rides the O(1) small-message fallback (one materialize + one solve),
// 65536 (64 MiB) pays the full four-candidate sweep. The planner's θ cache
// warms across iterations, so this tracks the selector's steady-state cost,
// not first-touch solve time.
void BM_AlgoSelect(benchmark::State& state) {
  const int n = 8;
  core::CostParams params;
  params.alpha = nanoseconds(100);
  params.delta = nanoseconds(100);
  params.alpha_r = microseconds(10);
  params.b = gbps(800);
  core::Planner planner(topo::directed_ring(n, gbps(800)), params);
  workload::MaterializeOptions opts;
  opts.allreduce = workload::AllReduceAlgo::kAuto;
  const workload::CollectiveRequest req{workload::CollectiveKind::kAllReduce,
                                        kib(state.range(0)), "bench"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::select_algorithm(planner, req, opts));
  }
  state.counters["fallback"] =
      core::select_algorithm(planner, req, opts).threshold_fallback ? 1.0 : 0.0;
}
BENCHMARK(BM_AlgoSelect)->Arg(4)->Arg(65536)->Unit(benchmark::kMicrosecond);

void BM_CollectiveGeneration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(collective::swing_allreduce(n, mib(1)));
  }
}
BENCHMARK(BM_CollectiveGeneration)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMicrosecond);

// Core ChunkList algebra on the two shapes schedule builders produce: a
// maximally scattered set (every other chunk — swing-style, runs ==
// chunks/2) and a contiguous mod-n window (ring/binomial-style, 2 runs).
// One iteration = union + intersection + rotation + full chunk iteration.
void BM_ChunkListOps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<int> evens;
  for (int c = 0; c < n; c += 2) evens.push_back(c);
  const auto scattered = collective::ChunkList::from_unsorted(evens);
  const auto window = collective::ChunkList::wrapped_range(n - n / 4, n / 2, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scattered.union_with(window));
    benchmark::DoNotOptimize(scattered.intersect(window));
    benchmark::DoNotOptimize(collective::ChunkList::rotated(scattered, n / 3, n));
    long long sum = 0;
    for (int c : scattered) sum += c;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ChunkListOps)->Arg(256)->Arg(4096)->Unit(benchmark::kMicrosecond);

// Multi-tenant sweep: 12 hypercube-16 scenarios (3 collectives x 2 sizes x
// 2 reconfiguration delays) whose step matchings overlap heavily, with θ on
// this topology going through the GK/LP solvers (the expensive case the
// memo exists for). Arg(0) = per-planner caches (every tenant re-solves),
// Arg(1) = one cross-planner SharedThetaCache. The counters report the
// sweep-wide hit rate and the number of exact θ solves actually performed —
// the shared cache's win is fewer solves, visible in both time and
// theta_solves.
void BM_SweepDriver(benchmark::State& state) {
  const bool shared = state.range(0) == 1;
  sweep::ScenarioGrid grid;
  grid.topologies = {sweep::TopologyKind::kHypercube};
  grid.node_counts = {16};
  grid.collectives = {
      sweep::CollectiveSpec{.kind = workload::CollectiveKind::kAllReduce,
                            .allreduce = workload::AllReduceAlgo::kSwing},
      sweep::CollectiveSpec{.kind = workload::CollectiveKind::kAllReduce,
                            .allreduce = workload::AllReduceAlgo::kHalvingDoubling},
      sweep::CollectiveSpec{.kind = workload::CollectiveKind::kAllGather},
  };
  grid.message_sizes = {mib(1), mib(16)};
  core::CostParams fast;
  fast.alpha = nanoseconds(100);
  fast.delta = nanoseconds(100);
  fast.alpha_r = nanoseconds(100);
  fast.b = gbps(800);
  core::CostParams slow = fast;
  slow.alpha_r = microseconds(10);
  grid.cost_params = {fast, slow};

  double hit_rate = 0.0;
  double solves = 0.0;
  for (auto _ : state) {
    sweep::SweepOptions options;
    options.parallel = false;  // timing the work, not the pool
    // Fresh cache per iteration: hit rate measured within one sweep, not
    // warmed across iterations.
    if (shared) options.shared_cache = sweep::make_shared_theta_cache();
    const auto report = sweep::run_sweep(grid, options);
    benchmark::DoNotOptimize(report);
    hit_rate = report.cache.hit_rate();
    solves = static_cast<double>(report.cache.misses);
  }
  state.counters["theta_hit_rate"] = hit_rate;
  state.counters["theta_solves"] = solves;
}
BENCHMARK(BM_SweepDriver)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Planning-as-a-service throughput: one PlanService fed a round-robin
// request stream over range(0) distinct solve keys. The first pass per key
// is a cold solve, everything after is a plan-memo hit — the daemon's
// steady-state mix (Arg(1) = pure hit path, Arg(8) = 1/8 cold). Arg(0) is
// the cold-solve-heavy profile: every request carries a globally unique
// message size, so the memo never hits and each request pays a full solve
// (plus the pipelined pricing that now rides every plan). Counters export
// the service's own latency percentiles — the serve SLO numbers tracked
// across baselines.
void BM_ServeThroughput(benchmark::State& state) {
  const int keys = static_cast<int>(state.range(0));
  constexpr int kRequestsPerIter = 64;
  std::atomic<std::size_t> emitted{0};
  serve::ServiceOptions opts;
  opts.workers = 2;
  // The cold profile enqueues all 64 requests of an iteration as distinct
  // solves; the default 32-deep admission queue would shed half of them.
  opts.queue_limit = 128;
  serve::PlanService svc(opts, [&emitted](const std::string& line) {
    emitted.fetch_add(line.size(), std::memory_order_relaxed);
  });
  std::size_t seq = 0;
  for (auto _ : state) {
    for (int r = 0; r < kRequestsPerIter; ++r) {
      const std::size_t bytes =
          (std::size_t{1} << 20) +
          (keys == 0 ? seq : static_cast<std::size_t>(r % keys));
      svc.submit_line(
          "{\"op\":\"plan\",\"id\":\"b" + std::to_string(seq++) +
          "\",\"topology\":\"ring\",\"nodes\":8,"
          "\"collective\":\"allreduce:ring\",\"message_bytes\":" +
          std::to_string(bytes) + "}");
    }
    svc.drain();
  }
  benchmark::DoNotOptimize(emitted.load());
  const auto st = svc.stats();
  state.counters["p50_plan_ms"] = st.p50_plan_ms;
  state.counters["p99_plan_ms"] = st.p99_plan_ms;
  state.counters["memo_hit_rate"] = st.cache_hit_rate();
  state.SetItemsProcessed(state.iterations() * kRequestsPerIter);
}
BENCHMARK(BM_ServeThroughput)->Arg(0)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

// Multi-connection serve throughput over the real Unix-socket transport.
// range(0) closed-loop clients each run their own connection and ping-pong
// kRequestsPerClient memo-hit plan requests through it — strict
// request/response with a short think time between requests, the way
// interactive planners drive the daemon. Arg(1) is the serial baseline:
// the daemon idles through every think gap, so aggregate throughput is
// pinned near 1/(think + round trip). Arg(4) is what the poll loop buys:
// think gaps overlap across connections and the daemon serves whoever is
// ready — the old one-connection-at-a-time accept loop would hold the
// other three sessions at connect() for the whole run.
void BM_ServeThroughputMulti(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  constexpr int kRequestsPerClient = 64;
  constexpr int kWindow = 1;  // strict ping-pong per connection
  constexpr auto kThinkTime = std::chrono::microseconds(200);
  const std::string path =
      "/tmp/psd-bench-" + std::to_string(::getpid()) + ".sock";

  serve::ServiceOptions sopts;
  sopts.workers = 2;
  sopts.queue_limit = 256;
  serve::PlanService svc(sopts, [](const std::string&) {});
  serve::SocketServerOptions topts;
  topts.socket_path = path;
  serve::SocketServer server(topts, svc);
  server.start();

  const std::string request =
      "{\"op\":\"plan\",\"id\":\"m\",\"topology\":\"ring\",\"nodes\":8,"
      "\"collective\":\"allreduce:ring\",\"message_bytes\":1048576}\n";

  auto connect_client = [&path]() {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  };
  // One round-trip pass per client: write up to kWindow requests ahead,
  // count newline-terminated responses until all are answered.
  auto pump = [&](int fd) {
    int sent = 0;
    int answered = 0;
    char buf[4096];
    while (answered < kRequestsPerClient) {
      while (sent < kRequestsPerClient && sent - answered < kWindow) {
        if (::send(fd, request.data(), request.size(), 0) < 0) return false;
        ++sent;
      }
      const auto n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      for (ssize_t i = 0; i < n; ++i) {
        if (buf[i] == '\n') {
          ++answered;
          std::this_thread::sleep_for(kThinkTime);
        }
      }
    }
    return true;
  };

  // Warm the memo so every measured request is a hit: throughput of the
  // serving path, not the solver.
  {
    const int fd = connect_client();
    if (fd >= 0) {
      char buf[4096];
      (void)!::send(fd, request.data(), request.size(), 0);
      (void)::recv(fd, buf, sizeof(buf), 0);
      ::close(fd);
    }
  }

  for (auto _ : state) {
    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    workers.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&] {
        const int fd = connect_client();
        if (fd < 0 || !pump(fd)) failures.fetch_add(1);
        if (fd >= 0) ::close(fd);
      });
    }
    for (auto& w : workers) w.join();
    if (failures.load() != 0) {
      state.SkipWithError("client connection or pump failed");
      break;
    }
  }
  const auto st = svc.stats();
  state.counters["memo_hit_rate"] = st.cache_hit_rate();
  state.SetItemsProcessed(state.iterations() * clients * kRequestsPerClient);

  server.stop();
  svc.shutdown();
  ::unlink(path.c_str());
}
BENCHMARK(BM_ServeThroughputMulti)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
