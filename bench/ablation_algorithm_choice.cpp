// Ablation (§4 "deeper understanding of the propagation delays"): which
// AllReduce algorithm wins at each message size, static vs adaptive fabric.
// The paper's claim: on static interconnects the ring is hard to beat (θ=1,
// ℓ=1 per step) even for short messages when propagation dominates; on
// reconfigurable fabrics fewer-step algorithms (halving/doubling, Swing)
// become attractive because reconfiguration removes their congestion.
#include <cstdio>

#include "psd/collective/algorithms.hpp"
#include "psd/core/planner.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/table.hpp"

int main() {
  using namespace psd;
  const int n = 64;

  core::CostParams params;
  params.alpha = nanoseconds(100);
  params.delta = nanoseconds(100);
  params.alpha_r = microseconds(1);
  params.b = gbps(800);
  core::Planner planner(topo::directed_ring(n, gbps(800)), params);

  std::printf("Ablation: AllReduce algorithm choice on the n=%d ring "
              "(alpha=100ns, delta=100ns, alpha_r=1us)\n", n);
  std::printf("static = never reconfigure; OPT = Eq. 7 DP schedule; times in us\n\n");

  TextTable table;
  table.set_header({"M", "ring static", "rd static", "hd static",
                    "swing static", "ring OPT", "rd OPT", "hd OPT",
                    "swing OPT", "best algorithm (OPT)"});

  for (double m_kib : {4.0, 64.0, 1024.0, 16384.0, 262144.0}) {
    const Bytes m = kib(m_kib);
    const auto ring_s = collective::ring_allreduce(n, m);
    const auto rd = collective::recursive_doubling_allreduce(n, m);
    const auto hd = collective::halving_doubling_allreduce(n, m);
    const auto swing = collective::swing_allreduce(n, m);

    const auto r_ring = planner.plan(ring_s);
    const auto r_rd = planner.plan(rd);
    const auto r_hd = planner.plan(hd);
    const auto r_swing = planner.plan(swing);

    const double opts[4] = {
        r_ring.optimal.total_time().us(), r_rd.optimal.total_time().us(),
        r_hd.optimal.total_time().us(), r_swing.optimal.total_time().us()};
    const char* names[4] = {"ring", "recursive-doubling", "halving/doubling",
                            "swing"};
    int best = 0;
    for (int i = 1; i < 4; ++i) {
      if (opts[i] < opts[best]) best = i;
    }

    table.add_row({to_string(m),
                   fmt_double(r_ring.static_base.total_time().us(), 1),
                   fmt_double(r_rd.static_base.total_time().us(), 1),
                   fmt_double(r_hd.static_base.total_time().us(), 1),
                   fmt_double(r_swing.static_base.total_time().us(), 1),
                   fmt_double(opts[0], 1), fmt_double(opts[1], 1),
                   fmt_double(opts[2], 1), fmt_double(opts[3], 1),
                   names[best]});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\non the static ring the 2(n-1)-step ring algorithm stays "
              "competitive; with cheap reconfiguration the log-step "
              "algorithms dominate at every size.\n");
  return 0;
}
