// Ablation: agreement between the event-driven flow-level simulator and the
// analytic Eq. (4)/(7) cost, plus the deviation a max–min-fair transport
// introduces relative to the model's concurrent-flow allocation.
#include <cmath>
#include <cstdio>

#include "psd/collective/algorithms.hpp"
#include "psd/core/planner.hpp"
#include "psd/sim/flow_sim.hpp"
#include "psd/topo/builders.hpp"
#include "psd/util/table.hpp"

int main() {
  using namespace psd;
  const int n = 32;  // keep the max–min re-rating sweeps quick

  core::CostParams params;
  params.alpha = nanoseconds(100);
  params.delta = nanoseconds(100);
  params.b = gbps(800);

  std::printf("Ablation: event-driven simulation vs analytic model (n=%d ring)\n\n", n);
  TextTable table;
  table.set_header({"collective", "M", "alpha_r", "model_us", "sim_cf_us",
                    "rel_err", "sim_maxmin_us", "maxmin/model"});

  double worst_err = 0.0;
  for (const char* algo : {"hd", "swing", "a2a"}) {
    for (double m_mib : {1.0, 16.0}) {
      const auto sched =
          std::string(algo) == "hd"
              ? collective::halving_doubling_allreduce(n, mib(m_mib))
              : (std::string(algo) == "swing"
                     ? collective::swing_allreduce(n, mib(m_mib))
                     : collective::alltoall_transpose(n, mib(m_mib)));
      for (double ar_us : {1.0, 50.0}) {
        params.alpha_r = microseconds(ar_us);
        core::Planner planner(topo::directed_ring(n, gbps(800)), params);
        const auto r = planner.plan(sched);

        sim::SimConfig cf_cfg;
        cf_cfg.params = params;
        sim::FlowLevelSimulator cf_sim(topo::directed_ring(n, gbps(800)),
                                       topo::Matching::rotation(n, 1), cf_cfg);
        const auto cf = cf_sim.run(sched, r.optimal);

        sim::SimConfig mm_cfg;
        mm_cfg.params = params;
        mm_cfg.policy = sim::RatePolicy::kMaxMinFair;
        sim::FlowLevelSimulator mm_sim(topo::directed_ring(n, gbps(800)),
                                       topo::Matching::rotation(n, 1), mm_cfg);
        const auto mm = mm_sim.run(sched, r.optimal);

        const double model = r.optimal.total_time().us();
        const double err = std::fabs(cf.completion_time.us() - model) / model;
        worst_err = std::max(worst_err, err);
        table.add_row({std::string(algo), fmt_double(m_mib, 0) + " MiB",
                       fmt_double(ar_us, 0) + " us", fmt_double(model, 2),
                       fmt_double(cf.completion_time.us(), 2),
                       fmt_double(err, 9),
                       fmt_double(mm.completion_time.us(), 2),
                       fmt_double(mm.completion_time.us() / model, 4)});
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nworst relative error (concurrent-flow policy): %.2e — the "
              "simulator reproduces the analytic cost exactly up to floating "
              "point.\nmax-min deviates only where a step's flow set is "
              "asymmetric on the base topology.\n", worst_err);
  return 0;
}
