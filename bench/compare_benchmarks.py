#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and emit a machine-readable delta.

Usage:
  bench/compare_benchmarks.py BASELINE.json NEW.json [--out DELTA.json]
      [--max-ratio R] [--quiet]

Prints a per-benchmark table of baseline time, new time and the new/baseline
ratio (ratio < 1 is a speedup), and writes the same data as JSON when --out
is given. Benchmarks present in only one file are reported but never fail
the check.

With --max-ratio R the script exits non-zero if any benchmark common to both
files regressed by more than R× (ratio-based, so the ±15% run-to-run
variance of a CI-class box doesn't trip it; R defaults to infinity = report
only). --normalize divides every ratio by the median ratio across common
benchmarks before gating: a uniformly slower machine (e.g. a shared CI
runner compared against a baseline recorded on a developer box) shifts all
ratios equally and cancels out, while a genuine regression of one benchmark
still stands out. Because normalization would also cancel a *real* uniform
regression, --max-median-ratio bounds the median itself (baseline box and
CI runner speeds differ by a known, bounded factor).

--check-families exits non-zero when the two files cover different
benchmark families: a baseline family missing from the new run means a
perf PR silently dropped coverage; a new family missing from the baseline
means the committed baseline was not regenerated, leaving that benchmark
unguarded by the regression gate. Either direction lists the offending
names.

CI runs this against the committed BENCH_solvers.json with --max-ratio 3
--normalize --max-median-ratio 5 --check-families.
"""

import argparse
import json
import math
import sys


def load_benchmarks(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        # aggregate entries (mean/median/stddev) would double-count
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = {
            "real_time": b["real_time"],
            "time_unit": b.get("time_unit", "ns"),
        }
    return out


UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def to_ns(entry):
    return entry["real_time"] * UNIT_NS[entry["time_unit"]]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--out", help="write the delta as JSON to this path")
    ap.add_argument("--max-ratio", type=float, default=math.inf,
                    help="fail if any common benchmark regressed more than this")
    ap.add_argument("--normalize", action="store_true",
                    help="gate on ratios divided by the median ratio "
                         "(cancels uniform machine-speed differences)")
    ap.add_argument("--max-median-ratio", type=float, default=math.inf,
                    help="fail if the median ratio itself exceeds this "
                         "(catches uniform regressions --normalize would hide)")
    ap.add_argument("--check-families", action="store_true",
                    help="fail if either file has benchmark families the "
                         "other lacks (dropped coverage / stale baseline)")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args()

    base = load_benchmarks(args.baseline)
    new = load_benchmarks(args.new)

    delta = {"baseline_file": args.baseline, "new_file": args.new,
             "max_ratio": None if math.isinf(args.max_ratio) else args.max_ratio,
             "normalized": args.normalize,
             "benchmarks": {}, "regressions": [],
             "missing_from_new": sorted(set(base) - set(new)),
             "missing_from_baseline": sorted(set(new) - set(base))}
    rows = []
    for name in sorted(set(base) | set(new)):
        b = base.get(name)
        n = new.get(name)
        entry = {
            "baseline_ns": to_ns(b) if b else None,
            "new_ns": to_ns(n) if n else None,
            "ratio": (to_ns(n) / to_ns(b)) if (b and n and to_ns(b) > 0) else None,
        }
        delta["benchmarks"][name] = entry
        rows.append((name, entry))

    ratios = sorted(e["ratio"] for _, e in rows if e["ratio"] is not None)
    median = ratios[len(ratios) // 2] if ratios else 1.0
    delta["median_ratio"] = median if ratios else None
    for name, e in rows:
        if e["ratio"] is None:
            continue
        gated = e["ratio"] / median if (args.normalize and median > 0) else e["ratio"]
        e["gated_ratio"] = gated
        if gated > args.max_ratio:
            delta["regressions"].append(name)

    if not args.quiet:
        width = max((len(r[0]) for r in rows), default=10)
        print(f"{'benchmark':<{width}}  {'baseline':>12}  {'new':>12}  {'ratio':>7}")
        for name, e in rows:
            fmt = lambda v: f"{v/1e3:.1f}us" if v is not None else "-"
            ratio = f"{e['ratio']:.3f}" if e["ratio"] is not None else "-"
            print(f"{name:<{width}}  {fmt(e['baseline_ns']):>12}  "
                  f"{fmt(e['new_ns']):>12}  {ratio:>7}")

    if args.out:
        with open(args.out, "w") as f:
            json.dump(delta, f, indent=2)
            f.write("\n")
        if not args.quiet:
            print(f"Wrote {args.out}")

    if args.check_families and (delta["missing_from_new"] or
                                delta["missing_from_baseline"]):
        if delta["missing_from_new"]:
            print("error: benchmark families in the baseline but missing from "
                  "the new run (dropped coverage): "
                  + ", ".join(delta["missing_from_new"]), file=sys.stderr)
        if delta["missing_from_baseline"]:
            print("error: benchmark families in the new run but missing from "
                  "the baseline (regenerate BENCH_solvers.json so the "
                  "regression gate guards them): "
                  + ", ".join(delta["missing_from_baseline"]), file=sys.stderr)
        return 1
    if (args.normalize and ratios and median > args.max_median_ratio):
        print(f"error: median ratio {median:.2f} exceeds "
              f"{args.max_median_ratio} - the whole suite regressed "
              f"(or the runner is far slower than the baseline box)",
              file=sys.stderr)
        return 1
    if delta["regressions"]:
        print(f"error: {len(delta['regressions'])} benchmark(s) regressed more "
              f"than {args.max_ratio}x: {', '.join(delta['regressions'])}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
