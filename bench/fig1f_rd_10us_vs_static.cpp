// Figure 1f: OPT vs the static ring; recursive (halving/)doubling, alpha = 10 us.
#include "heatmap_common.hpp"

int main() {
  psd::bench::HeatmapSpec spec;
  spec.figure = "Figure 1f";
  spec.workload = "AllReduce, recursive halving/doubling [30]";
  spec.alpha = psd::microseconds(10);
  spec.baseline = psd::bench::Baseline::kStaticRing;
  spec.build = psd::bench::halving_doubling_builder();
  return psd::bench::run_heatmap(spec);
}
