// Figure 1g: OPT vs the static ring; Swing, alpha = 100 ns.
#include "heatmap_common.hpp"

int main() {
  psd::bench::HeatmapSpec spec;
  spec.figure = "Figure 1g";
  spec.workload = "AllReduce, Swing [32]";
  spec.alpha = psd::nanoseconds(100);
  spec.baseline = psd::bench::Baseline::kStaticRing;
  spec.build = psd::bench::swing_builder();
  return psd::bench::run_heatmap(spec);
}
