// Figure 1h: OPT vs the static ring; All-to-All, alpha = 100 ns.
#include "heatmap_common.hpp"

int main() {
  psd::bench::HeatmapSpec spec;
  spec.figure = "Figure 1h";
  spec.workload = "All-to-All (transpose)";
  spec.alpha = psd::nanoseconds(100);
  spec.baseline = psd::bench::Baseline::kStaticRing;
  spec.build = psd::bench::alltoall_builder();
  return psd::bench::run_heatmap(spec);
}
