// Figure 1a: OPT vs naive BvN schedules; recursive (halving/)doubling, alpha = 100 ns.
#include "heatmap_common.hpp"

int main() {
  psd::bench::HeatmapSpec spec;
  spec.figure = "Figure 1a";
  spec.workload = "AllReduce, recursive halving/doubling [30]";
  spec.alpha = psd::nanoseconds(100);
  spec.baseline = psd::bench::Baseline::kNaiveBvn;
  spec.build = psd::bench::halving_doubling_builder();
  return psd::bench::run_heatmap(spec);
}
