// psd_serve: the planning-as-a-service daemon over psd::serve::PlanService.
//
//   psd_serve [--workers N] [--queue-limit N] [--watchdog-ms N]
//             [--fast-path-ms X] [--socket PATH] [--max-line-bytes N]
//             [--debounce-ms N] [--debounce-trailing]
//             [--memo-journal PATH] [--journal-compact-records N]
//             [--journal-keep N] [--tenant-quota N]
//             [--fault-spec SPEC] [--fault-seed N]
//
// Default transport is stdio: one JSON request per stdin line, one JSON
// response per stdout line (possibly out of order — correlate by "id";
// protocol in docs/serve.md). With --socket PATH the daemon serves N
// concurrent connections through serve::SocketServer — a poll(2) event
// loop with per-connection framing, buffering, and backpressure — and
// every connection's answers are routed back to the connection that asked.
// tools/serve_client.py is the reference client.
//
// --debounce-ms arms delta-storm debouncing (one replan wave per burst;
// --debounce-trailing makes each rider extend the window so the wave
// fires after the *last* delta). --memo-journal persists the plan memo
// as a crash-consistent append-only journal: every completed answer is
// durable immediately, a kill -9 mid-write costs at most the torn tail,
// and the journal compacts itself every --journal-compact-records
// appends keeping --journal-keep generations on disk. --tenant-quota
// caps any one client's in-flight solves (per-tenant DRR fairness).
//
// --fault-spec arms the seeded deterministic fault injector (drills;
// site registry and spec grammar in docs/fault_injection.md) and
// --fault-seed makes the schedule replayable.
//
// Exit: a "shutdown" request, stdin EOF (stdio mode), or SIGINT/SIGTERM.
// Queued-but-unserved requests still receive SHUTTING_DOWN responses and
// in-flight solves finish before the process exits.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

#include <unistd.h>

#include "psd/serve/service.hpp"
#include "psd/serve/transport.hpp"
#include "psd/util/fault_injection.hpp"
#include "psd/util/line_buffer.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workers N] [--queue-limit N] [--watchdog-ms N]\n"
      "          [--fast-path-ms X] [--socket PATH] [--max-line-bytes N]\n"
      "          [--debounce-ms N] [--debounce-trailing]\n"
      "          [--memo-journal PATH] [--journal-compact-records N]\n"
      "          [--journal-keep N] [--tenant-quota N]\n"
      "          [--fault-spec SPEC] [--fault-seed N]\n",
      argv0);
  return 2;
}

/// Serialized stdout sink for stdio mode (socket mode routes responses
/// through per-connection sinks inside SocketServer instead).
class StdoutSink {
 public:
  void write_line(const std::string& line) {
    const std::lock_guard<std::mutex> lk(mu_);
    std::string buf = line;
    buf.push_back('\n');
    std::size_t off = 0;
    while (off < buf.size()) {
      const ssize_t n =
          ::write(STDOUT_FILENO, buf.data() + off, buf.size() - off);
      if (n <= 0) return;  // stdout gone; drop the rest
      off += static_cast<std::size_t>(n);
    }
  }

 private:
  std::mutex mu_;
};

std::atomic<bool> g_interrupted{false};

void on_signal(int) { g_interrupted.store(true); }

/// stdio mode: feeds newline-delimited requests from stdin into the
/// service until EOF, a shutdown request, or a signal.
void pump_stdin(psd::serve::PlanService& service, std::size_t max_line_bytes) {
  psd::util::LineBuffer in(max_line_bytes);
  char buf[4096];
  while (!g_interrupted.load() && !service.shutting_down()) {
    const ssize_t n = ::read(STDIN_FILENO, buf, sizeof buf);
    if (n <= 0) break;
    in.append(buf, static_cast<std::size_t>(n));
    std::string line;
    while (!service.shutting_down()) {
      const auto ev = in.next(&line);
      if (ev == psd::util::LineBuffer::Event::kNone) break;
      if (ev == psd::util::LineBuffer::Event::kOverlong) {
        service.submit_line("");  // folds into an INVALID_REQUEST response
        continue;
      }
      if (line.empty()) continue;
      service.submit_line(line);
    }
  }
  // EOF means the driving process is done — answer what is queued, then
  // leave.
  if (!service.shutting_down()) service.drain();
}

}  // namespace

int main(int argc, char** argv) {
  psd::serve::ServiceOptions opts;
  psd::serve::SocketServerOptions sock;
  std::string fault_spec;
  std::uint64_t fault_seed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "psd_serve: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    const auto next_number = [&](double lo, double hi) {
      const std::string v = next();
      char* end = nullptr;
      const double x = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || x < lo || x > hi) {
        std::fprintf(stderr, "psd_serve: %s needs a number in [%g, %g]\n",
                     arg.c_str(), lo, hi);
        std::exit(2);
      }
      return x;
    };
    if (arg == "--workers") {
      opts.workers = static_cast<unsigned>(next_number(1, 256));
    } else if (arg == "--queue-limit") {
      opts.queue_limit = static_cast<std::size_t>(next_number(1, 1 << 20));
    } else if (arg == "--watchdog-ms") {
      opts.watchdog_interval =
          std::chrono::milliseconds(static_cast<long>(next_number(1, 60000)));
    } else if (arg == "--fast-path-ms") {
      opts.fast_path_budget_ms = next_number(0, 60000);
    } else if (arg == "--socket") {
      sock.socket_path = next();
    } else if (arg == "--max-line-bytes") {
      sock.max_line_bytes =
          static_cast<std::size_t>(next_number(64, 1 << 30));
    } else if (arg == "--debounce-ms") {
      opts.replan_debounce_window =
          std::chrono::milliseconds(static_cast<long>(next_number(0, 600000)));
    } else if (arg == "--debounce-trailing") {
      opts.debounce_trailing = true;
    } else if (arg == "--memo-journal") {
      opts.memo_journal_path = next();
    } else if (arg == "--journal-compact-records") {
      opts.journal_compact_records =
          static_cast<std::size_t>(next_number(1, 1 << 20));
    } else if (arg == "--journal-keep") {
      opts.journal_keep_generations =
          static_cast<std::size_t>(next_number(1, 1024));
    } else if (arg == "--tenant-quota") {
      opts.tenant_inflight_quota =
          static_cast<std::size_t>(next_number(0, 1 << 20));
    } else if (arg == "--fault-spec") {
      fault_spec = next();
    } else if (arg == "--fault-seed") {
      fault_seed = static_cast<std::uint64_t>(next_number(0, 1e18));
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else {
      std::fprintf(stderr, "psd_serve: unknown argument %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // The injector outlives both the service and the transport (they hold
  // raw pointers). Disarmed sites cost one relaxed load, so wiring it in
  // unconditionally is free when no --fault-spec was given.
  psd::util::FaultInjector fault(fault_seed);
  if (!fault_spec.empty()) {
    try {
      fault.arm_spec(fault_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "psd_serve: bad --fault-spec: %s\n", e.what());
      return 2;
    }
    opts.fault = &fault;
    sock.fault = &fault;
  }

  StdoutSink out;
  psd::serve::PlanService service(
      opts, [&out](const std::string& line) { out.write_line(line); });

  if (!sock.socket_path.empty()) {
    psd::serve::SocketServer server(sock, service);
    try {
      server.start();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "psd_serve: %s\n", e.what());
      return 1;
    }
    std::fprintf(stderr, "psd_serve: listening on %s\n",
                 sock.socket_path.c_str());
    // The event loop runs in the server's thread; this thread just waits
    // for a reason to leave (signal, or a shutdown op observed by the
    // loop, which then drains and exits on its own).
    while (server.running() && !g_interrupted.load()) {
      ::usleep(50 * 1000);
    }
    server.stop();
  } else {
    pump_stdin(service, sock.max_line_bytes);
  }
  service.shutdown();
  return 0;
}
