// psd_serve: the planning-as-a-service daemon over psd::serve::PlanService.
//
//   psd_serve [--workers N] [--queue-limit N] [--watchdog-ms N]
//             [--fast-path-ms X] [--socket PATH]
//
// Default transport is stdio: one JSON request per stdin line, one JSON
// response per stdout line (possibly out of order — correlate by "id";
// protocol in docs/serve.md). With --socket PATH the daemon listens on a
// Unix domain socket instead and serves connections one at a time, each a
// JSON-lines session — tools/serve_client.py is the reference client.
//
// Exit: a "shutdown" request, stdin EOF (stdio mode), or SIGINT/SIGTERM.
// Queued-but-unserved requests still receive SHUTTING_DOWN responses and
// in-flight solves finish before the process exits.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "psd/serve/service.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--queue-limit N] [--watchdog-ms N]\n"
               "          [--fast-path-ms X] [--socket PATH]\n",
               argv0);
  return 2;
}

/// Serialized response sink: stdout, or the live socket connection. A
/// closed/absent connection drops the line — an async answer whose client
/// went away has nowhere to go, and the daemon must not die over it.
class Output {
 public:
  void set_fd(int fd) {
    const std::lock_guard<std::mutex> lk(mu_);
    fd_ = fd;
  }

  void write_line(const std::string& line) {
    const std::lock_guard<std::mutex> lk(mu_);
    if (fd_ < 0) return;
    std::string buf = line;
    buf.push_back('\n');
    std::size_t off = 0;
    while (off < buf.size()) {
      // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the daemon.
      const ssize_t n =
          fd_ == STDOUT_FILENO
              ? ::write(fd_, buf.data() + off, buf.size() - off)
              : ::send(fd_, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;  // client gone; drop the rest
      off += static_cast<std::size_t>(n);
    }
  }

 private:
  std::mutex mu_;
  int fd_ = STDOUT_FILENO;
};

std::atomic<bool> g_interrupted{false};

void on_signal(int) { g_interrupted.store(true); }

/// Feeds newline-delimited requests from `fd` into the service until EOF,
/// a shutdown request, or a signal. Returns false on EOF/error (connection
/// over), true when the service is shutting down (daemon should exit).
bool pump_fd(int fd, psd::serve::PlanService& service) {
  std::string pending;
  char buf[4096];
  while (!g_interrupted.load()) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) return service.shutting_down();
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = pending.find('\n', start); nl != std::string::npos;
         nl = pending.find('\n', start)) {
      std::string line = pending.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      service.submit_line(line);
      if (service.shutting_down()) return true;
    }
    pending.erase(0, start);
  }
  return true;
}

int serve_socket(const std::string& path, psd::serve::PlanService& service,
                 Output& out) {
  const int srv = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (srv < 0) {
    std::fprintf(stderr, "psd_serve: socket: %s\n", std::strerror(errno));
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "psd_serve: socket path too long\n");
    ::close(srv);
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  if (::bind(srv, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(srv, 4) < 0) {
    std::fprintf(stderr, "psd_serve: bind/listen %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(srv);
    return 1;
  }
  std::fprintf(stderr, "psd_serve: listening on %s\n", path.c_str());
  bool done = false;
  while (!done && !g_interrupted.load()) {
    const int conn = ::accept(srv, nullptr, nullptr);
    if (conn < 0) break;
    out.set_fd(conn);
    done = pump_fd(conn, service);
    // Let queued work finish so late answers still reach this client
    // before the connection goes away.
    if (!done) service.drain();
    out.set_fd(-1);
    ::close(conn);
  }
  ::close(srv);
  ::unlink(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  psd::serve::ServiceOptions opts;
  std::string socket_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "psd_serve: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    const auto next_number = [&](double lo, double hi) {
      const std::string v = next();
      char* end = nullptr;
      const double x = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || x < lo || x > hi) {
        std::fprintf(stderr, "psd_serve: %s needs a number in [%g, %g]\n",
                     arg.c_str(), lo, hi);
        std::exit(2);
      }
      return x;
    };
    if (arg == "--workers") {
      opts.workers = static_cast<unsigned>(next_number(1, 256));
    } else if (arg == "--queue-limit") {
      opts.queue_limit = static_cast<std::size_t>(next_number(1, 1 << 20));
    } else if (arg == "--watchdog-ms") {
      opts.watchdog_interval =
          std::chrono::milliseconds(static_cast<long>(next_number(1, 60000)));
    } else if (arg == "--fast-path-ms") {
      opts.fast_path_budget_ms = next_number(0, 60000);
    } else if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else {
      std::fprintf(stderr, "psd_serve: unknown argument %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  Output out;
  psd::serve::PlanService service(
      opts, [&out](const std::string& line) { out.write_line(line); });

  int rc = 0;
  if (!socket_path.empty()) {
    rc = serve_socket(socket_path, service, out);
  } else {
    // stdio mode: EOF means the driving process is done — answer what is
    // queued, then leave.
    if (!pump_fd(STDIN_FILENO, service)) service.drain();
  }
  service.shutdown();
  return rc;
}
