#!/usr/bin/env python3
"""Smoke client for the psd_serve planning daemon (docs/serve.md protocol).

Connects to a daemon started with ``psd_serve --socket PATH``, drives a
scripted session covering the happy path, memo hits, deadline degradation,
admission errors and stats, and exits nonzero on any assertion failure —
CI runs this as the serve smoke test.

  serve_client.py --socket PATH [--fault] [--verbose]

With --fault the session additionally injects a topology delta while a
plan request is in flight on the same context, and asserts the daemon
answers that request (fresh or degraded) instead of erroring — the
fault-tolerance drill.
"""
import argparse
import json
import socket
import sys
import time


class Client:
    """JSON-lines client; responses may arrive out of order (keyed by id)."""

    def __init__(self, path, verbose=False, timeout=120.0):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(timeout)
        self.sock.connect(path)
        self.buf = b""
        self.responses = {}
        self.verbose = verbose

    def send(self, obj):
        if self.verbose:
            print(">>", json.dumps(obj), file=sys.stderr)
        self.sock.sendall((json.dumps(obj) + "\n").encode())

    def wait(self, rid, timeout=120.0):
        """Returns the response for ``rid``, reading lines as needed."""
        deadline = time.monotonic() + timeout
        while rid not in self.responses:
            if time.monotonic() > deadline:
                raise TimeoutError(f"no response for {rid!r}")
            nl = self.buf.find(b"\n")
            if nl < 0:
                chunk = self.sock.recv(65536)
                if not chunk:
                    raise ConnectionError(f"daemon closed before {rid!r}")
                self.buf += chunk
                continue
            line, self.buf = self.buf[:nl], self.buf[nl + 1:]
            if not line.strip():
                continue
            resp = json.loads(line)
            if self.verbose:
                print("<<", json.dumps(resp), file=sys.stderr)
            self.responses[resp.get("id", "")] = resp
        return self.responses[rid]


FAILURES = []


def check(cond, what):
    if cond:
        return
    FAILURES.append(what)
    print(f"FAIL: {what}", file=sys.stderr)


def plan(rid, **over):
    req = {
        "op": "plan",
        "id": rid,
        "topology": "ring",
        "nodes": 8,
        "collective": "allreduce:ring",
        "message_bytes": 1 << 20,
    }
    req.update(over)
    return req


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--socket", required=True)
    ap.add_argument("--fault", action="store_true",
                    help="inject a topology delta under an in-flight plan")
    ap.add_argument("--workers", type=int, default=2,
                    help="daemon worker count (to pin them all down in 5b)")
    ap.add_argument("--no-shutdown", action="store_true",
                    help="skip the shutdown handshake (concurrent-client "
                         "runs: the harness shuts the daemon down once, "
                         "after every client is done)")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()

    c = Client(args.socket, verbose=args.verbose)

    # 1. Cold solve.
    c.send(plan("r1"))
    r1 = c.wait("r1")
    check(r1["code"] == "OK" and not r1["degraded"], "r1 plans fresh")
    check(r1["optimal_ns"] > 0 and r1["steps"] > 0, "r1 carries plan numbers")

    # 2. Identical request: memo hit.
    c.send(plan("r2"))
    r2 = c.wait("r2")
    check(r2["code"] == "OK" and r2["cached"], "r2 served from the plan memo")
    check(r2["optimal_ns"] == r1["optimal_ns"], "r2 matches r1 bit-exactly")

    # 3. A second context is independent.
    c.send(plan("r3", topology="bidir-ring", collective="allgather"))
    check(c.wait("r3")["code"] == "OK", "r3 plans on a second context")

    # 4. Topology delta on r1's context: epoch bump + theta carry.
    c.send({"op": "delta", "id": "d1", "topology": "ring", "nodes": 8,
            "ops": [{"kind": "scale_capacity", "src": 2, "dst": 3,
                     "factor": 0.5}]})
    d1 = c.wait("d1")
    check(d1["code"] == "OK" and d1["epoch"] >= 1, "d1 applies the delta")
    check(not d1["relaxing"] and d1["touched"] == 1,
          "d1 is a restricting single-edge delta")

    # 5. Forced-degraded answer: impossibly tight budget on the delta'd key.
    #    The fresh memo entry is stale now, so the degradation ladder must
    #    serve it with its epoch lag (replans may race us — retry on a
    #    fresh cache hit, degraded only needs to show up once).
    degraded_seen = False
    for attempt in range(5):
        rid = f"r4_{attempt}"
        c.send(plan(rid, deadline_ms=0.05))
        r4 = c.wait(rid)
        check(r4["code"] in ("OK", "DEADLINE_EXCEEDED"),
              "tight deadline answered via the ladder")
        if r4["code"] == "OK" and r4.get("degraded"):
            check(r4.get("epoch_lag", 0) >= 1, "degraded answer reports lag")
            degraded_seen = True
            break
        if r4["code"] == "OK" and not r4.get("degraded"):
            break  # async replan refreshed the memo first — also fine
    # 5b. Guarantee a degraded response for the stats assertion: first pin
    #     every worker down with cold heavy solves so the delta's async
    #     replan sits queued behind them, then delta and immediately ask
    #     with a tight budget — the fast-path ladder must serve the stale
    #     memo entry (the replan cannot have refreshed it yet).
    if not degraded_seen:
        for w in range(args.workers):
            c.send(plan(f"busy{w}", topology="mesh", nodes=12,
                        collective="alltoall",
                        message_bytes=(1 << 22) + w + 1))
        c.send({"op": "delta", "id": "d2", "topology": "ring", "nodes": 8,
                "ops": [{"kind": "scale_capacity", "src": 3, "dst": 4,
                         "factor": 0.5}]})
        c.send(plan("r5", deadline_ms=0.05))
        r5 = c.wait("r5")
        check(r5["code"] == "OK" and r5.get("degraded"),
              "tight-deadline request right after a delta degrades")
        degraded_seen = r5["code"] == "OK" and bool(r5.get("degraded"))
        for w in range(args.workers):
            check(c.wait(f"busy{w}")["code"] == "OK", f"busy{w} still answered")

    # 6. Tight deadline on a never-seen key: nothing to degrade to.
    c.send(plan("r6", message_bytes=77777, deadline_ms=0.05))
    check(c.wait("r6")["code"] == "DEADLINE_EXCEEDED",
          "tight deadline with no stale answer is DEADLINE_EXCEEDED")

    # 7. Invalid request.
    c.send({"op": "plan", "id": "r7", "topology": "klein-bottle", "nodes": 8,
            "collective": "allreduce"})
    check(c.wait("r7")["code"] == "INVALID_REQUEST", "bad topology rejected")

    if args.fault:
        # Fault drill: a solve in flight when its context's topology
        # changes must still be answered — degraded (stale epoch) or fresh
        # (replanned/solved after the delta), never an error.
        c.send(plan("f1", topology="mesh", nodes=12,
                    collective="alltoall", message_bytes=1 << 22))
        c.send({"op": "delta", "id": "fd", "topology": "mesh", "nodes": 12,
                "ops": [{"kind": "scale_capacity", "src": 0, "dst": 1,
                         "factor": 0.25}]})
        check(c.wait("fd")["code"] == "OK", "fault delta applies mid-flight")
        f1 = c.wait("f1")
        check(f1["code"] == "OK", "in-flight plan survives the delta")
        if f1.get("degraded"):
            check(f1.get("epoch_lag", 0) >= 1, "overtaken solve reports lag")

    # 8. Stats: percentile fields present and the session's outcomes show.
    c.send({"op": "stats", "id": "s1"})
    s1 = c.wait("s1")
    check(s1["code"] == "OK", "stats responds OK")
    st = s1["stats"]
    for field in ("p50_plan_ms", "p99_plan_ms", "planned", "degraded",
                  "deadline_exceeded", "cache_hits", "queue_depth",
                  "worker_restarts", "theta_cache_hit_rate"):
        check(field in st, f"stats carries {field}")
    check(st["planned"] >= 2, "at least two fresh solves recorded")
    check(st["p50_plan_ms"] > 0, "p50 computed from real samples")
    check(st["p99_plan_ms"] >= st["p50_plan_ms"], "p99 >= p50")
    check(st["cache_hits"] >= 1, "memo hit counted")
    if degraded_seen:
        check(st["degraded"] >= 1, "degraded answer counted")
    check(st["deadline_exceeded"] >= 1, "deadline miss counted")

    # 9. Shutdown handshake (skipped when another client owns the daemon's
    #    lifecycle — e.g. the concurrent-clients CI smoke).
    if not args.no_shutdown:
        c.send({"op": "shutdown", "id": "bye"})
        bye = c.wait("bye")
        check(bye["code"] == "OK" and bye.get("shutting_down"),
              "shutdown acknowledged")

    if FAILURES:
        print(f"serve_client: {len(FAILURES)} assertion(s) failed",
              file=sys.stderr)
        return 1
    print("serve_client: all assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
