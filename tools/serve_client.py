#!/usr/bin/env python3
"""Smoke client for the psd_serve planning daemon (docs/serve.md protocol).

Connects to a daemon started with ``psd_serve --socket PATH``, drives a
scripted session covering the happy path, memo hits, deadline degradation,
admission errors and stats, and exits nonzero on any assertion failure —
CI runs this as the serve smoke test.

  serve_client.py --socket PATH [--fault] [--retries N] [--backoff-ms MS]
                  [--expect-warm] [--verbose]

With --fault the session additionally injects a topology delta while a
plan request is in flight on the same context, and asserts the daemon
answers that request (fresh or degraded) instead of erroring — the
fault-tolerance drill.

With --retries N every sequential request survives up to N transient
failures: SHED answers are retried after the daemon's retry_after_ms
hint, and connection resets (a daemon restart, an injected
transport.conn.reset) reconnect and resend. The backoff is exponential
from --backoff-ms with jitter so a herd of smoke clients does not
stampede a recovering daemon.

With --expect-warm the session asserts the daemon restarted warm from
its memo journal: the first plan answers cached with zero solves behind
it — the kill-9-and-restart journal drill in CI.
"""
import argparse
import json
import os
import random
import socket
import sys
import time


class Client:
    """JSON-lines client; responses may arrive out of order (keyed by id)."""

    def __init__(self, path, verbose=False, timeout=120.0):
        self.path = path
        self.verbose = verbose
        self.timeout = timeout
        self.reconnects = 0
        self._connect()

    def _connect(self):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(self.timeout)
        self.sock.connect(self.path)
        self.buf = b""
        self.responses = {}

    def reconnect(self):
        try:
            self.sock.close()
        except OSError:
            pass
        self._connect()
        self.reconnects += 1

    def send(self, obj):
        if self.verbose:
            print(">>", json.dumps(obj), file=sys.stderr)
        self.sock.sendall((json.dumps(obj) + "\n").encode())

    def wait(self, rid, timeout=120.0):
        """Returns the response for ``rid``, reading lines as needed."""
        deadline = time.monotonic() + timeout
        while rid not in self.responses:
            if time.monotonic() > deadline:
                raise TimeoutError(f"no response for {rid!r}")
            nl = self.buf.find(b"\n")
            if nl < 0:
                chunk = self.sock.recv(65536)
                if not chunk:
                    raise ConnectionError(f"daemon closed before {rid!r}")
                self.buf += chunk
                continue
            line, self.buf = self.buf[:nl], self.buf[nl + 1:]
            if not line.strip():
                continue
            resp = json.loads(line)
            if self.verbose:
                print("<<", json.dumps(resp), file=sys.stderr)
            self.responses[resp.get("id", "")] = resp
        return self.responses[rid]

    def request(self, obj, retries=0, backoff_ms=50.0):
        """Send + wait with jittered exponential backoff on SHED / resets.

        A SHED answer honors the daemon's retry_after_ms hint (the backoff
        never undercuts it); a torn connection reconnects and resends. The
        last attempt's failure propagates.
        """
        rid = obj["id"]
        for attempt in range(retries + 1):
            try:
                self.send(obj)
                resp = self.wait(rid)
            except (ConnectionError, TimeoutError, OSError):
                if attempt == retries:
                    raise
                self._backoff(attempt, backoff_ms, None)
                self.reconnect()
                continue
            if resp.get("code") == "SHED" and attempt < retries:
                self._backoff(attempt, backoff_ms, resp.get("retry_after_ms"))
                self.responses.pop(rid, None)  # the retry reuses the id
                continue
            return resp
        return resp

    def _backoff(self, attempt, backoff_ms, retry_after_ms):
        delay_ms = backoff_ms * (2 ** attempt) * (0.5 + random.random() / 2)
        if retry_after_ms is not None:
            delay_ms = max(delay_ms, float(retry_after_ms))
        if self.verbose:
            print(f"-- backoff {delay_ms:.0f} ms (attempt {attempt + 1})",
                  file=sys.stderr)
        time.sleep(delay_ms / 1000.0)


FAILURES = []


def check(cond, what):
    if cond:
        return
    FAILURES.append(what)
    print(f"FAIL: {what}", file=sys.stderr)


def plan(rid, **over):
    req = {
        "op": "plan",
        "id": rid,
        "topology": "ring",
        "nodes": 8,
        "collective": "allreduce:ring",
        "message_bytes": 1 << 20,
    }
    req.update(over)
    return req


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--socket", required=True)
    ap.add_argument("--fault", action="store_true",
                    help="inject a topology delta under an in-flight plan")
    ap.add_argument("--workers", type=int, default=2,
                    help="daemon worker count (to pin them all down in 5b)")
    ap.add_argument("--retries", type=int, default=0,
                    help="transient-failure retries per sequential request")
    ap.add_argument("--backoff-ms", type=float, default=50.0,
                    help="base backoff between retries (exponential, "
                         "jittered, floored by the daemon's retry_after_ms)")
    ap.add_argument("--expect-warm", action="store_true",
                    help="assert the daemon restarted warm from its memo "
                         "journal (first plan cached, no solve behind it)")
    ap.add_argument("--no-shutdown", action="store_true",
                    help="skip the shutdown handshake (concurrent-client "
                         "runs: the harness shuts the daemon down once, "
                         "after every client is done)")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()

    c = Client(args.socket, verbose=args.verbose)

    def request(obj):
        return c.request(obj, retries=args.retries, backoff_ms=args.backoff_ms)

    # 1. Cold solve (or a journal-warm hit when the daemon restarted).
    r1 = request(plan("r1"))
    check(r1["code"] == "OK" and not r1["degraded"], "r1 plans fresh")
    check(r1["optimal_ns"] > 0 and r1["steps"] > 0, "r1 carries plan numbers")
    if args.expect_warm:
        check(r1.get("cached"), "r1 answered warm from the journal")

    # 2. Identical request: memo hit.
    r2 = request(plan("r2"))
    check(r2["code"] == "OK" and r2["cached"], "r2 served from the plan memo")
    check(r2["optimal_ns"] == r1["optimal_ns"], "r2 matches r1 bit-exactly")

    # 3. A second context is independent.
    r3 = request(plan("r3", topology="bidir-ring", collective="allgather"))
    check(r3["code"] == "OK", "r3 plans on a second context")

    # 4. Topology delta on r1's context: epoch bump + theta carry.
    d1 = request({"op": "delta", "id": "d1", "topology": "ring", "nodes": 8,
                  "ops": [{"kind": "scale_capacity", "src": 2, "dst": 3,
                           "factor": 0.5}]})
    check(d1["code"] == "OK" and d1["epoch"] >= 1, "d1 applies the delta")
    check(not d1["relaxing"] and d1["touched"] == 1,
          "d1 is a restricting single-edge delta")

    # 5. Forced-degraded answer: impossibly tight budget on the delta'd key.
    #    The fresh memo entry is stale now, so the degradation ladder must
    #    serve it with its epoch lag (replans may race us — retry on a
    #    fresh cache hit, degraded only needs to show up once).
    degraded_seen = False
    for attempt in range(5):
        rid = f"r4_{attempt}"
        r4 = request(plan(rid, deadline_ms=0.05))
        check(r4["code"] in ("OK", "DEADLINE_EXCEEDED"),
              "tight deadline answered via the ladder")
        if r4["code"] == "OK" and r4.get("degraded"):
            check(r4.get("epoch_lag", 0) >= 1, "degraded answer reports lag")
            degraded_seen = True
            break
        if r4["code"] == "OK" and not r4.get("degraded"):
            break  # async replan refreshed the memo first — also fine
    # 5b. Guarantee a degraded response for the stats assertion: first pin
    #     every worker down with cold heavy solves so the delta's async
    #     replan sits queued behind them, then delta and immediately ask
    #     with a tight budget — the fast-path ladder must serve the stale
    #     memo entry (the replan cannot have refreshed it yet).
    if not degraded_seen:
        # Salt the pinning solves per process: a daemon restarted warm from
        # its journal must not answer them from the memo (that would free
        # the workers and let the replan win the race below).
        salt = (os.getpid() % 4096) * 16
        for w in range(args.workers):
            c.send(plan(f"busy{w}", topology="mesh", nodes=12,
                        collective="alltoall",
                        message_bytes=(1 << 22) + salt + w + 1))
        c.send({"op": "delta", "id": "d2", "topology": "ring", "nodes": 8,
                "ops": [{"kind": "scale_capacity", "src": 3, "dst": 4,
                         "factor": 0.5}]})
        c.send(plan("r5", deadline_ms=0.05))
        r5 = c.wait("r5")
        check(r5["code"] == "OK" and r5.get("degraded"),
              "tight-deadline request right after a delta degrades")
        degraded_seen = r5["code"] == "OK" and bool(r5.get("degraded"))
        for w in range(args.workers):
            check(c.wait(f"busy{w}")["code"] == "OK", f"busy{w} still answered")

    # 6. Tight deadline on a never-seen key: nothing to degrade to.
    r6 = request(plan("r6", message_bytes=77777, deadline_ms=0.05))
    check(r6["code"] == "DEADLINE_EXCEEDED",
          "tight deadline with no stale answer is DEADLINE_EXCEEDED")

    # 7. Invalid request.
    r7 = request({"op": "plan", "id": "r7", "topology": "klein-bottle",
                  "nodes": 8, "collective": "allreduce"})
    check(r7["code"] == "INVALID_REQUEST", "bad topology rejected")

    if args.fault:
        # Fault drill: a solve in flight when its context's topology
        # changes must still be answered — degraded (stale epoch) or fresh
        # (replanned/solved after the delta), never an error.
        c.send(plan("f1", topology="mesh", nodes=12,
                    collective="alltoall", message_bytes=1 << 22))
        c.send({"op": "delta", "id": "fd", "topology": "mesh", "nodes": 12,
                "ops": [{"kind": "scale_capacity", "src": 0, "dst": 1,
                         "factor": 0.25}]})
        check(c.wait("fd")["code"] == "OK", "fault delta applies mid-flight")
        f1 = c.wait("f1")
        check(f1["code"] == "OK", "in-flight plan survives the delta")
        if f1.get("degraded"):
            check(f1.get("epoch_lag", 0) >= 1, "overtaken solve reports lag")

    # 8. Stats: percentile fields present and the session's outcomes show.
    s1 = request({"op": "stats", "id": "s1"})
    check(s1["code"] == "OK", "stats responds OK")
    st = s1["stats"]
    for field in ("p50_plan_ms", "p99_plan_ms", "planned", "degraded",
                  "deadline_exceeded", "cache_hits", "queue_depth",
                  "worker_restarts", "theta_cache_hit_rate",
                  "faults_injected", "journal_compactions",
                  "journal_truncated_tail", "tenant_deferrals"):
        check(field in st, f"stats carries {field}")
    if args.expect_warm:
        check(st.get("memo_loaded", 0) >= 1, "journal entries loaded at boot")
    else:
        check(st["planned"] >= 2, "at least two fresh solves recorded")
        check(st["p50_plan_ms"] > 0, "p50 computed from real samples")
        check(st["p99_plan_ms"] >= st["p50_plan_ms"], "p99 >= p50")
    check(st["cache_hits"] >= 1, "memo hit counted")
    if degraded_seen:
        check(st["degraded"] >= 1, "degraded answer counted")
    check(st["deadline_exceeded"] >= 1, "deadline miss counted")

    # 9. Shutdown handshake (skipped when another client owns the daemon's
    #    lifecycle — e.g. the concurrent-clients CI smoke).
    if not args.no_shutdown:
        bye = request({"op": "shutdown", "id": "bye"})
        check(bye["code"] == "OK" and bye.get("shutting_down"),
              "shutdown acknowledged")

    if FAILURES:
        print(f"serve_client: {len(FAILURES)} assertion(s) failed",
              file=sys.stderr)
        return 1
    print("serve_client: all assertions passed"
          + (f" ({c.reconnects} reconnect(s))" if c.reconnects else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
