#!/usr/bin/env python3
"""Validate a psd_sweep report pair against the docs/sweep.md schema.

Usage: check_sweep_report.py REPORT.json [REPORT.csv]

Checks the JSON top-level shape, every row's fields and invariants
(speedups >= 1, positive times, optimal <= baselines), the cache counter
block, and — when the CSV is given — that it has the documented header and
one line per JSON row. Exits non-zero with a message on the first
violation; CI runs this on the smoke grid's output.
"""
import json
import sys

CSV_HEADER = (
    "id,topology,nodes,collective,message_bytes,alpha_ns,delta_ns,alpha_r_ns,"
    "bandwidth_gbps,steps,optimal_ns,static_ns,naive_bvn_ns,greedy_ns,"
    "reconfigurations,speedup_vs_static,speedup_vs_bvn,speedup_vs_best"
)
ROW_FIELDS = CSV_HEADER.split(",")
CACHE_FIELDS = ["mode", "hits", "misses", "insertions", "evictions",
                "entries", "lock_contentions", "hit_rate"]


def fail(msg):
    print(f"check_sweep_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail("usage: check_sweep_report.py REPORT.json [REPORT.csv]")
    with open(sys.argv[1]) as f:
        report = json.load(f)

    if report.get("schema") != "psd-sweep-report-v1":
        fail(f"unexpected schema {report.get('schema')!r}")
    rows = report.get("rows")
    if not isinstance(rows, list) or not rows:
        fail("rows must be a non-empty array")
    if report.get("scenarios") != len(rows):
        fail(f"scenarios={report.get('scenarios')} but {len(rows)} rows")
    if not isinstance(report.get("skipped"), int) or report["skipped"] < 0:
        fail("skipped must be a non-negative integer")

    for i, row in enumerate(rows):
        missing = [k for k in ROW_FIELDS if k not in row]
        if missing:
            fail(f"row {i} missing fields: {missing}")
        for k in ("optimal_ns", "static_ns", "naive_bvn_ns", "greedy_ns"):
            if not (isinstance(row[k], (int, float)) and row[k] > 0):
                fail(f"row {i}: {k}={row[k]!r} must be a positive number")
        # DP optimality: nothing beats the optimal plan.
        for k in ("static_ns", "naive_bvn_ns", "greedy_ns"):
            if row[k] < row["optimal_ns"] * (1 - 1e-9):
                fail(f"row {i}: {k}={row[k]} < optimal_ns={row['optimal_ns']}")
        for k in ("speedup_vs_static", "speedup_vs_bvn", "speedup_vs_best"):
            if row[k] < 1 - 1e-9:
                fail(f"row {i}: {k}={row[k]} < 1")
        if row["steps"] <= 0 or row["nodes"] < 2:
            fail(f"row {i}: implausible steps/nodes {row['steps']}/{row['nodes']}")

    cache = report.get("cache")
    if not isinstance(cache, dict):
        fail("cache block missing")
    missing = [k for k in CACHE_FIELDS if k not in cache]
    if missing:
        fail(f"cache block missing fields: {missing}")
    if cache["mode"] not in ("shared", "per-planner"):
        fail(f"cache mode {cache['mode']!r}")
    if not 0 <= cache["hit_rate"] <= 1:
        fail(f"hit_rate {cache['hit_rate']} out of [0, 1]")

    if len(sys.argv) > 2:
        with open(sys.argv[2]) as f:
            lines = f.read().splitlines()
        if not lines or lines[0] != CSV_HEADER:
            fail("CSV header does not match docs/sweep.md")
        data_lines = [ln for ln in lines[1:] if ln]
        if len(data_lines) != len(rows):
            fail(f"CSV has {len(data_lines)} rows, JSON has {len(rows)}")
        for i, ln in enumerate(data_lines):
            if len(ln.split(",")) != len(ROW_FIELDS):
                fail(f"CSV row {i} has wrong column count")

    print(f"check_sweep_report: OK — {len(rows)} rows, "
          f"cache[{cache['mode']}] hit_rate={cache['hit_rate']:.3f}")


if __name__ == "__main__":
    main()
