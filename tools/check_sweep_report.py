#!/usr/bin/env python3
"""Validate a psd_sweep report pair against the docs/sweep.md schema.

Usage: check_sweep_report.py REPORT.json [REPORT.csv]

Checks the JSON top-level shape, every row's fields and invariants
(speedups >= 1, positive times, optimal <= baselines), the cache counter
block, and — when the CSV is given — that it has the documented header and
one line per JSON row. Exits non-zero with a message on the first
violation; CI runs this on the smoke grid's output.
"""
import json
import sys

CSV_HEADER = (
    "id,topology,nodes,collective,message_bytes,alpha_ns,delta_ns,alpha_r_ns,"
    "bandwidth_gbps,steps,optimal_ns,static_ns,naive_bvn_ns,greedy_ns,"
    "reconfigurations,speedup_vs_static,speedup_vs_bvn,speedup_vs_best"
)
ROW_FIELDS = CSV_HEADER.split(",")
CACHE_FIELDS = ["mode", "hits", "misses", "insertions", "evictions",
                "entries", "lock_contentions", "hit_rate"]
# JSON-only churn block: present exactly on churn rows (id contains "/k").
CHURN_FIELDS = ["drops", "droop", "seed", "events", "theta_healthy",
                "theta_min", "degradation_depth", "worst_recovery_ns",
                "fully_recovered", "replan_solves", "gk_path_pushes",
                "gk_sssp_searches", "cache_kept", "cache_erased"]


def fail(msg):
    print(f"check_sweep_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_pipelined(i, row):
    """Validates the JSON-only pipelined pricing fields (present on every
    non-error row) and `chosen_algo`, required exactly on auto scenarios."""
    for k in ("pipelined_ns", "pipeline_chunks"):
        if k not in row:
            fail(f"row {i}: missing {k}")
    if not (isinstance(row["pipelined_ns"], (int, float))
            and row["pipelined_ns"] > 0):
        fail(f"row {i}: pipelined_ns={row['pipelined_ns']!r} must be positive")
    # A single chunk is always swept, so pipelining never prices above the
    # barrier-mode optimum.
    if row["pipelined_ns"] > row["optimal_ns"] * (1 + 1e-9):
        fail(f"row {i}: pipelined_ns={row['pipelined_ns']} exceeds "
             f"optimal_ns={row['optimal_ns']}")
    if not (isinstance(row["pipeline_chunks"], int)
            and row["pipeline_chunks"] >= 1):
        fail(f"row {i}: pipeline_chunks={row['pipeline_chunks']!r} must be >= 1")
    is_auto = ":auto" in row["collective"]
    algo = row.get("chosen_algo")
    if is_auto:
        if not (isinstance(algo, str) and algo):
            fail(f"row {i}: auto scenario {row['id']!r} lacks chosen_algo")
        if algo == "auto":
            fail(f"row {i}: chosen_algo must be a resolved algorithm")
    elif algo is not None:
        fail(f"row {i}: chosen_algo on a non-auto scenario {row['id']!r}")


def check_churn(i, row):
    """Validates a row's churn block: required iff the scenario id carries
    the failure-axis suffix ("/k<drops>/f<droop>/s<seed>")."""
    is_churn = "/k" in row["id"]
    churn = row.get("churn")
    if not is_churn:
        if churn is not None:
            fail(f"row {i}: churn block on a non-churn scenario {row['id']!r}")
        return
    if not isinstance(churn, dict):
        fail(f"row {i}: churn scenario {row['id']!r} lacks a churn block")
    missing = [k for k in CHURN_FIELDS if k not in churn]
    if missing:
        fail(f"row {i}: churn block missing fields: {missing}")
    if churn["drops"] < 1:
        fail(f"row {i}: churn drops={churn['drops']} must be >= 1")
    if not 0 < churn["droop"] <= 1:
        fail(f"row {i}: churn droop={churn['droop']} out of (0, 1]")
    if churn["theta_healthy"] <= 0:
        fail(f"row {i}: theta_healthy={churn['theta_healthy']} must be positive")
    if churn["theta_min"] > churn["theta_healthy"] * (1 + 1e-9):
        fail(f"row {i}: theta_min={churn['theta_min']} exceeds "
             f"theta_healthy={churn['theta_healthy']}")
    if not -1e-9 <= churn["degradation_depth"] <= 1 + 1e-9:
        fail(f"row {i}: degradation_depth={churn['degradation_depth']} "
             "out of [0, 1]")
    if not isinstance(churn["fully_recovered"], bool):
        fail(f"row {i}: fully_recovered must be a boolean")
    for k in ("events", "worst_recovery_ns", "replan_solves", "gk_path_pushes",
              "gk_sssp_searches", "cache_kept", "cache_erased"):
        if not (isinstance(churn[k], (int, float)) and churn[k] >= 0):
            fail(f"row {i}: churn {k}={churn[k]!r} must be non-negative")


def main():
    if len(sys.argv) < 2:
        fail("usage: check_sweep_report.py REPORT.json [REPORT.csv]")
    with open(sys.argv[1]) as f:
        report = json.load(f)

    if report.get("schema") != "psd-sweep-report-v1":
        fail(f"unexpected schema {report.get('schema')!r}")
    rows = report.get("rows")
    if not isinstance(rows, list) or not rows:
        fail("rows must be a non-empty array")
    if report.get("scenarios") != len(rows):
        fail(f"scenarios={report.get('scenarios')} but {len(rows)} rows")
    if not isinstance(report.get("skipped"), int) or report["skipped"] < 0:
        fail("skipped must be a non-negative integer")

    for i, row in enumerate(rows):
        missing = [k for k in ROW_FIELDS if k not in row]
        if missing:
            fail(f"row {i} missing fields: {missing}")
        if "error" in row:
            # Failed scenario: the row records the error and carries zeros
            # for every plan number, so the invariants below don't apply.
            if not (isinstance(row["error"], str) and row["error"]):
                fail(f"row {i}: error must be a non-empty string")
            if row["steps"] != 0:
                fail(f"row {i}: error row carries steps={row['steps']}")
            continue
        for k in ("optimal_ns", "static_ns", "naive_bvn_ns", "greedy_ns"):
            if not (isinstance(row[k], (int, float)) and row[k] > 0):
                fail(f"row {i}: {k}={row[k]!r} must be a positive number")
        # DP optimality: nothing beats the optimal plan.
        for k in ("static_ns", "naive_bvn_ns", "greedy_ns"):
            if row[k] < row["optimal_ns"] * (1 - 1e-9):
                fail(f"row {i}: {k}={row[k]} < optimal_ns={row['optimal_ns']}")
        for k in ("speedup_vs_static", "speedup_vs_bvn", "speedup_vs_best"):
            if row[k] < 1 - 1e-9:
                fail(f"row {i}: {k}={row[k]} < 1")
        if row["steps"] <= 0 or row["nodes"] < 2:
            fail(f"row {i}: implausible steps/nodes {row['steps']}/{row['nodes']}")
        check_pipelined(i, row)
        check_churn(i, row)

    cache = report.get("cache")
    if not isinstance(cache, dict):
        fail("cache block missing")
    missing = [k for k in CACHE_FIELDS if k not in cache]
    if missing:
        fail(f"cache block missing fields: {missing}")
    if cache["mode"] not in ("shared", "per-planner"):
        fail(f"cache mode {cache['mode']!r}")
    if not 0 <= cache["hit_rate"] <= 1:
        fail(f"hit_rate {cache['hit_rate']} out of [0, 1]")

    if len(sys.argv) > 2:
        with open(sys.argv[2]) as f:
            lines = f.read().splitlines()
        if not lines or lines[0] != CSV_HEADER:
            fail("CSV header does not match docs/sweep.md")
        data_lines = [ln for ln in lines[1:] if ln]
        if len(data_lines) != len(rows):
            fail(f"CSV has {len(data_lines)} rows, JSON has {len(rows)}")
        for i, ln in enumerate(data_lines):
            if len(ln.split(",")) != len(ROW_FIELDS):
                fail(f"CSV row {i} has wrong column count")

    print(f"check_sweep_report: OK — {len(rows)} rows, "
          f"cache[{cache['mode']}] hit_rate={cache['hit_rate']:.3f}")


if __name__ == "__main__":
    main()
