// psd_sweep: run a multi-tenant scenario sweep from a grid-spec file and
// emit the JSON/CSV report (schemas in docs/sweep.md).
//
//   psd_sweep --spec grid.spec [--out-json report.json] [--out-csv report.csv]
//             [--serial] [--threads N] [--per-planner-cache] [--quiet]
//
// By default scenarios run in parallel on the process-wide pool with one
// cross-planner θ cache shared by every planner; --per-planner-cache gives
// each planner its own memo (the baseline the shared cache is measured
// against), --serial runs scenarios one at a time (the report rows are
// byte-identical either way).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "psd/sweep/driver.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --spec FILE [--out-json FILE] [--out-csv FILE]\n"
               "          [--serial] [--threads N] [--per-planner-cache] "
               "[--quiet]\n",
               argv0);
  return 2;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "psd_sweep: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path, out_json, out_csv;
  bool serial = false, per_planner = false, quiet = false;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "psd_sweep: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--spec") spec_path = next();
    else if (arg == "--out-json") out_json = next();
    else if (arg == "--out-csv") out_csv = next();
    else if (arg == "--serial") serial = true;
    else if (arg == "--threads") {
      // Digits only: stoul would accept "-1" by wrapping to ULONG_MAX and
      // the sweep would then try to spawn billions of workers.
      const std::string v = next();
      constexpr unsigned kMaxThreads = 1024;
      if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos ||
          v.size() > 4 || std::stoul(v) > kMaxThreads) {
        std::fprintf(stderr, "psd_sweep: --threads needs an integer in [0, %u]\n",
                     kMaxThreads);
        return 2;
      }
      threads = static_cast<unsigned>(std::stoul(v));
    }
    else if (arg == "--per-planner-cache") per_planner = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--help" || arg == "-h") return usage(argv[0]);
    else {
      std::fprintf(stderr, "psd_sweep: unknown argument %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (spec_path.empty()) return usage(argv[0]);

  std::ifstream in(spec_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "psd_sweep: cannot read %s\n", spec_path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  try {
    const auto grid = psd::sweep::parse_grid_spec(buf.str());
    psd::sweep::SweepOptions options;
    options.parallel = !serial;
    options.threads = threads;
    if (!per_planner) options.shared_cache = psd::sweep::make_shared_theta_cache();
    const auto report = psd::sweep::run_sweep(grid, options);

    if (!quiet) {
      std::printf("%s\n", psd::sweep::to_table(report).c_str());
      std::printf("scenarios: %zu  skipped: %zu  theta-cache[%s]: %zu hits / %zu "
                  "misses (hit rate %.3f), %zu entries, %zu evictions\n",
                  report.rows.size(), report.skipped,
                  to_string(report.cache_mode), report.cache.hits,
                  report.cache.misses, report.cache.hit_rate(),
                  report.cache.entries, report.cache.evictions);
    }
    if (!out_json.empty() && !write_file(out_json, psd::sweep::to_json(report)))
      return 1;
    if (!out_csv.empty() && !write_file(out_csv, psd::sweep::to_csv(report)))
      return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psd_sweep: %s\n", e.what());
    return 1;
  }
  return 0;
}
