// psd_sweep: run a multi-tenant scenario sweep from a grid-spec file and
// emit the JSON/CSV report (schemas in docs/sweep.md).
//
//   psd_sweep --spec grid.spec [--out-json report.json] [--out-csv report.csv]
//             [--serial] [--threads N] [--per-planner-cache] [--quiet]
//
// By default scenarios run in parallel on the process-wide pool with one
// cross-planner θ cache shared by every planner; --per-planner-cache gives
// each planner its own memo (the baseline the shared cache is measured
// against), --serial runs scenarios one at a time (the report rows are
// byte-identical either way).
//
// Exit codes (scripted callers branch on these):
//   0  success            2  usage error (bad flags)
//   3  spec unreadable    4  spec malformed (bad axes/values)
//   5  output unwritable  1  sweep failed (planner/solver error)
// Output paths are probed *before* the sweep runs, so a typo'd --out-json
// fails in milliseconds instead of after the whole grid is planned.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "psd/sweep/driver.hpp"
#include "psd/util/error.hpp"

namespace {

constexpr int kExitUsage = 2;
constexpr int kExitSpecUnreadable = 3;
constexpr int kExitSpecMalformed = 4;
constexpr int kExitOutputUnwritable = 5;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --spec FILE [--out-json FILE] [--out-csv FILE]\n"
               "          [--serial] [--threads N] [--per-planner-cache] "
               "[--quiet]\n",
               argv0);
  return kExitUsage;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "psd_sweep: cannot write %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  return true;
}

/// Fails fast on an unwritable output path by opening it for append (which
/// creates the file but preserves existing bytes if the sweep later dies),
/// before any planning work happens.
bool probe_writable(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    std::fprintf(stderr, "psd_sweep: cannot write %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path, out_json, out_csv;
  bool serial = false, per_planner = false, quiet = false;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "psd_sweep: %s needs a value\n", arg.c_str());
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (arg == "--spec") spec_path = next();
    else if (arg == "--out-json") out_json = next();
    else if (arg == "--out-csv") out_csv = next();
    else if (arg == "--serial") serial = true;
    else if (arg == "--threads") {
      // Digits only: stoul would accept "-1" by wrapping to ULONG_MAX and
      // the sweep would then try to spawn billions of workers.
      const std::string v = next();
      constexpr unsigned kMaxThreads = 1024;
      if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos ||
          v.size() > 4 || std::stoul(v) > kMaxThreads) {
        std::fprintf(stderr, "psd_sweep: --threads needs an integer in [0, %u]\n",
                     kMaxThreads);
        return kExitUsage;
      }
      threads = static_cast<unsigned>(std::stoul(v));
    }
    else if (arg == "--per-planner-cache") per_planner = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--help" || arg == "-h") return usage(argv[0]);
    else {
      std::fprintf(stderr, "psd_sweep: unknown argument %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (spec_path.empty()) {
    std::fprintf(stderr, "psd_sweep: --spec is required\n");
    return usage(argv[0]);
  }

  std::ifstream in(spec_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "psd_sweep: cannot read %s: %s\n", spec_path.c_str(),
                 std::strerror(errno));
    return kExitSpecUnreadable;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    std::fprintf(stderr, "psd_sweep: error reading %s\n", spec_path.c_str());
    return kExitSpecUnreadable;
  }

  // Parse the grid before probing outputs so a doubly-broken invocation
  // reports the spec problem (the thing the user most likely got wrong).
  psd::sweep::ScenarioGrid grid;
  try {
    grid = psd::sweep::parse_grid_spec(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psd_sweep: bad spec %s: %s\n", spec_path.c_str(),
                 e.what());
    return kExitSpecMalformed;
  }

  if (!out_json.empty() && !probe_writable(out_json)) return kExitOutputUnwritable;
  if (!out_csv.empty() && !probe_writable(out_csv)) return kExitOutputUnwritable;

  try {
    psd::sweep::SweepOptions options;
    options.parallel = !serial;
    options.threads = threads;
    if (!per_planner) options.shared_cache = psd::sweep::make_shared_theta_cache();
    const auto report = psd::sweep::run_sweep(grid, options);

    std::size_t failed = 0;
    for (const auto& row : report.rows) {
      if (row.error) ++failed;
    }
    if (!quiet) {
      std::printf("%s\n", psd::sweep::to_table(report).c_str());
      std::printf("scenarios: %zu  skipped: %zu  failed: %zu  "
                  "theta-cache[%s]: %zu hits / %zu "
                  "misses (hit rate %.3f), %zu entries, %zu evictions\n",
                  report.rows.size(), report.skipped, failed,
                  to_string(report.cache_mode), report.cache.hits,
                  report.cache.misses, report.cache.hit_rate(),
                  report.cache.entries, report.cache.evictions);
    }
    if (!out_json.empty() && !write_file(out_json, psd::sweep::to_json(report)))
      return kExitOutputUnwritable;
    if (!out_csv.empty() && !write_file(out_csv, psd::sweep::to_csv(report)))
      return kExitOutputUnwritable;
    if (failed > 0) {
      std::fprintf(stderr, "psd_sweep: %zu scenario(s) failed (see report rows)\n",
                   failed);
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psd_sweep: %s\n", e.what());
    return 1;
  }
  return 0;
}
